// Package volume implements the Volume abstraction the paper introduces for
// its revised implementation (§5.3): a complete subtree of files whose root
// may be arbitrarily relocated in the Vice name space, similar to a
// mountable disk pack. Volumes can be taken offline and online, moved
// between servers (via Serialize/Deserialize), salvaged after a crash, and
// Cloned — producing a frozen read-only replica with copy-on-write
// semantics, the mechanism behind the orderly release of system software.
//
// Every Vice file inside a volume is a vnode holding its data and its
// status record — the in-memory equivalent of the prototype's two Unix
// files per Vice file (data + .admin, §3.5.2). Directories are vnodes whose
// logical content is an entry table; fetching one materializes the encoded
// listing that workstations traverse client-side.
//
// A Volume is not safe for concurrent use: the Vice server serializes
// access, exactly as its single-process design prescribes.
package volume

import (
	"fmt"
	"sort"

	"itcfs/internal/prot"
	"itcfs/internal/proto"
)

// RootVnode is the vnode number of every volume's root directory.
const RootVnode uint32 = 1

// Clock supplies mtimes; simulated runs inject virtual time.
type Clock func() int64

// Vnode is one file, directory or symlink within a volume.
type Vnode struct {
	Status  proto.Status
	Data    []byte                    // file contents; shared with clones (copy-on-write)
	Entries map[string]proto.DirEntry // directories only
	ACL     prot.ACL                  // directories only
	// Parent is the vnode number of the containing directory; protection on
	// plain files is the directory's access list (§3.4). For files with
	// several hard links it is the directory of the first link, as in AFS.
	Parent uint32
}

// Volume is one mountable subtree.
type Volume struct {
	id       uint32
	name     string
	readOnly bool
	online   bool
	quota    int64 // bytes; 0 = unlimited
	used     int64
	next     uint32 // next vnode number
	uniq     uint32 // generation counter
	vnodes   map[uint32]*Vnode
	clock    Clock

	// Dirty tracking for durable stores (see store.go). Both maps are nil
	// unless EnableDirtyTracking has been called; nil maps make every mark a
	// no-op, so simulator volumes pay nothing.
	dirty map[uint32]uint8
	dead  map[uint32]bool
}

// New creates an empty read-write volume whose root directory carries acl.
func New(id uint32, name string, acl prot.ACL, quota int64, owner string, clock Clock) *Volume {
	if clock == nil {
		clock = func() int64 { return 0 }
	}
	v := &Volume{
		id:     id,
		name:   name,
		online: true,
		quota:  quota,
		next:   RootVnode + 1,
		uniq:   1,
		vnodes: make(map[uint32]*Vnode),
		clock:  clock,
	}
	v.vnodes[RootVnode] = &Vnode{
		Status: proto.Status{
			FID:   proto.FID{Volume: id, Vnode: RootVnode, Uniq: 1},
			Type:  proto.TypeDir,
			Mode:  0o755,
			Owner: owner,
			Links: 2,
			Mtime: clock(),
		},
		Entries: make(map[string]proto.DirEntry),
		ACL:     acl.Clone(),
	}
	return v
}

// ID returns the volume identifier.
func (v *Volume) ID() uint32 { return v.id }

// Name returns the administrative name.
func (v *Volume) Name() string { return v.name }

// ReadOnly reports whether the volume is a frozen clone.
func (v *Volume) ReadOnly() bool { return v.readOnly }

// Online reports whether the volume is serving requests.
func (v *Volume) Online() bool { return v.online }

// SetOnline flips the volume's availability.
func (v *Volume) SetOnline(on bool) { v.online = on }

// Quota returns the byte quota (0 = unlimited).
func (v *Volume) Quota() int64 { return v.quota }

// SetQuota changes the byte quota. Shrinking below current use is allowed;
// further growth is what gets refused.
func (v *Volume) SetQuota(q int64) { v.quota = q }

// Used returns the data bytes consumed.
func (v *Volume) Used() int64 { return v.used }

// Root returns the root FID.
func (v *Volume) Root() proto.FID {
	return v.vnodes[RootVnode].Status.FID
}

// RootACL returns the root directory's access list.
func (v *Volume) RootACL() prot.ACL { return v.vnodes[RootVnode].ACL }

// checkWritable gates every mutation.
func (v *Volume) checkWritable() error {
	if !v.online {
		return proto.ErrOffline
	}
	if v.readOnly {
		return proto.ErrReadOnly
	}
	return nil
}

// checkQuota admits a change of delta bytes.
func (v *Volume) checkQuota(delta int64) error {
	if v.quota > 0 && delta > 0 && v.used+delta > v.quota {
		return fmt.Errorf("%w: %d + %d > %d", proto.ErrQuota, v.used, delta, v.quota)
	}
	return nil
}

// Get resolves a FID to its vnode, enforcing generation match (a reused
// vnode number with a different Uniq is ErrStale).
func (v *Volume) Get(fid proto.FID) (*Vnode, error) {
	if !v.online {
		return nil, proto.ErrOffline
	}
	if fid.Volume != v.id {
		return nil, fmt.Errorf("%w: %v not in volume %d", proto.ErrStale, fid, v.id)
	}
	vn, ok := v.vnodes[fid.Vnode]
	if !ok || vn.Status.FID.Uniq != fid.Uniq {
		return nil, fmt.Errorf("%w: %v", proto.ErrStale, fid)
	}
	return vn, nil
}

// Lookup finds name within the directory dir.
func (v *Volume) Lookup(dir proto.FID, name string) (proto.DirEntry, error) {
	dn, err := v.Get(dir)
	if err != nil {
		return proto.DirEntry{}, err
	}
	if dn.Status.Type != proto.TypeDir {
		return proto.DirEntry{}, proto.ErrNotDir
	}
	de, ok := dn.Entries[name]
	if !ok {
		return proto.DirEntry{}, fmt.Errorf("%w: %s", proto.ErrNoEnt, name)
	}
	return de, nil
}

// List returns the directory's entries sorted by name.
func (v *Volume) List(dir proto.FID) ([]proto.DirEntry, error) {
	dn, err := v.Get(dir)
	if err != nil {
		return nil, err
	}
	if dn.Status.Type != proto.TypeDir {
		return nil, proto.ErrNotDir
	}
	out := make([]proto.DirEntry, 0, len(dn.Entries))
	for _, de := range dn.Entries {
		out = append(out, de)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// DirData materializes a directory's contents as the encoded listing that
// crosses the Vice-Virtue interface.
func (v *Volume) DirData(dir proto.FID) ([]byte, error) {
	entries, err := v.List(dir)
	if err != nil {
		return nil, err
	}
	return proto.EncodeDirEntries(entries), nil
}

// newVnode allocates a vnode of the given type.
func (v *Volume) newVnode(typ proto.FileType, mode uint16, owner string) *Vnode {
	v.uniq++
	id := v.next
	v.next++
	vn := &Vnode{
		Status: proto.Status{
			FID:   proto.FID{Volume: v.id, Vnode: id, Uniq: v.uniq},
			Type:  typ,
			Mode:  mode,
			Owner: owner,
			Links: 1,
			Mtime: v.clock(),
		},
	}
	if typ == proto.TypeDir {
		vn.Entries = make(map[string]proto.DirEntry)
		vn.Status.Links = 2
	}
	v.vnodes[id] = vn
	v.markMeta(id)
	return vn
}

func (v *Volume) touchDir(dn *Vnode) {
	dn.Status.Mtime = v.clock()
	dn.Status.Version++
	dn.Status.Size = int64(len(dn.Entries))
	v.markMeta(dn.Status.FID.Vnode)
}

// Create makes a new empty file name in dir.
func (v *Volume) Create(dir proto.FID, name string, mode uint16, owner string) (*Vnode, error) {
	dn, err := v.mutableDir(dir)
	if err != nil {
		return nil, err
	}
	if name == "" {
		return nil, fmt.Errorf("%w: empty name", proto.ErrBadRequest)
	}
	if _, exists := dn.Entries[name]; exists {
		return nil, fmt.Errorf("%w: %s", proto.ErrExist, name)
	}
	vn := v.newVnode(proto.TypeFile, mode, owner)
	vn.Parent = dir.Vnode
	dn.Entries[name] = proto.DirEntry{Name: name, FID: vn.Status.FID, Type: proto.TypeFile}
	v.touchDir(dn)
	return vn, nil
}

// MakeDir makes a new directory name in dir. The new directory inherits its
// parent's access list (per-directory protection, §3.4).
func (v *Volume) MakeDir(dir proto.FID, name string, mode uint16, owner string) (*Vnode, error) {
	dn, err := v.mutableDir(dir)
	if err != nil {
		return nil, err
	}
	if name == "" {
		return nil, fmt.Errorf("%w: empty name", proto.ErrBadRequest)
	}
	if _, exists := dn.Entries[name]; exists {
		return nil, fmt.Errorf("%w: %s", proto.ErrExist, name)
	}
	vn := v.newVnode(proto.TypeDir, mode, owner)
	vn.Parent = dir.Vnode
	vn.ACL = dn.ACL.Clone()
	dn.Entries[name] = proto.DirEntry{Name: name, FID: vn.Status.FID, Type: proto.TypeDir}
	dn.Status.Links++
	v.touchDir(dn)
	return vn, nil
}

// Symlink makes a symbolic link name in dir pointing at target.
func (v *Volume) Symlink(dir proto.FID, name, target string) (*Vnode, error) {
	dn, err := v.mutableDir(dir)
	if err != nil {
		return nil, err
	}
	if name == "" {
		return nil, fmt.Errorf("%w: empty name", proto.ErrBadRequest)
	}
	if _, exists := dn.Entries[name]; exists {
		return nil, fmt.Errorf("%w: %s", proto.ErrExist, name)
	}
	vn := v.newVnode(proto.TypeSymlink, 0o777, "")
	vn.Parent = dir.Vnode
	vn.Status.Target = target
	vn.Status.Size = int64(len(target))
	dn.Entries[name] = proto.DirEntry{Name: name, FID: vn.Status.FID, Type: proto.TypeSymlink}
	v.touchDir(dn)
	return vn, nil
}

// Link adds a hard link name in dir to the existing file target.
func (v *Volume) Link(dir proto.FID, name string, target proto.FID) error {
	dn, err := v.mutableDir(dir)
	if err != nil {
		return err
	}
	tn, err := v.Get(target)
	if err != nil {
		return err
	}
	if tn.Status.Type == proto.TypeDir {
		return proto.ErrIsDir
	}
	if _, exists := dn.Entries[name]; exists {
		return fmt.Errorf("%w: %s", proto.ErrExist, name)
	}
	dn.Entries[name] = proto.DirEntry{Name: name, FID: tn.Status.FID, Type: tn.Status.Type}
	tn.Status.Links++
	v.markMeta(tn.Status.FID.Vnode)
	v.touchDir(dn)
	return nil
}

func (v *Volume) mutableDir(dir proto.FID) (*Vnode, error) {
	if err := v.checkWritable(); err != nil {
		return nil, err
	}
	dn, err := v.Get(dir)
	if err != nil {
		return nil, err
	}
	if dn.Status.Type != proto.TypeDir {
		return nil, proto.ErrNotDir
	}
	return dn, nil
}

// WriteData replaces a file's contents — the server half of a whole-file
// store. The data version advances, which is what invalidates caches.
func (v *Volume) WriteData(fid proto.FID, data []byte) (*Vnode, error) {
	if err := v.checkWritable(); err != nil {
		return nil, err
	}
	vn, err := v.Get(fid)
	if err != nil {
		return nil, err
	}
	if vn.Status.Type != proto.TypeFile {
		return nil, proto.ErrIsDir
	}
	if err := v.checkQuota(int64(len(data)) - vn.Status.Size); err != nil {
		return nil, err
	}
	// Replace, never mutate: clones share the old slice (copy-on-write).
	vn.Data = append([]byte(nil), data...)
	v.used += int64(len(data)) - vn.Status.Size
	vn.Status.Size = int64(len(data))
	vn.Status.Version++
	vn.Status.Mtime = v.clock()
	v.markData(fid.Vnode)
	return vn, nil
}

// ReadData returns a file's contents. Directories yield their encoded
// listing. The returned slice must not be modified.
func (v *Volume) ReadData(fid proto.FID) ([]byte, *Vnode, error) {
	vn, err := v.Get(fid)
	if err != nil {
		return nil, nil, err
	}
	if vn.Status.Type == proto.TypeDir {
		data, err := v.DirData(fid)
		return data, vn, err
	}
	return vn.Data, vn, nil
}

// Remove unlinks the file or symlink name from dir.
func (v *Volume) Remove(dir proto.FID, name string) error {
	dn, err := v.mutableDir(dir)
	if err != nil {
		return err
	}
	de, ok := dn.Entries[name]
	if !ok {
		return fmt.Errorf("%w: %s", proto.ErrNoEnt, name)
	}
	if de.Type == proto.TypeDir {
		return proto.ErrIsDir
	}
	vn, err := v.Get(de.FID)
	if err == nil {
		vn.Status.Links--
		if vn.Status.Links <= 0 {
			if vn.Status.Type == proto.TypeFile {
				v.used -= vn.Status.Size
			}
			delete(v.vnodes, de.FID.Vnode)
			v.markDead(de.FID.Vnode)
		} else {
			v.markMeta(de.FID.Vnode)
		}
	}
	delete(dn.Entries, name)
	v.touchDir(dn)
	return nil
}

// RemoveDir removes the empty directory name from dir.
func (v *Volume) RemoveDir(dir proto.FID, name string) error {
	dn, err := v.mutableDir(dir)
	if err != nil {
		return err
	}
	de, ok := dn.Entries[name]
	if !ok {
		return fmt.Errorf("%w: %s", proto.ErrNoEnt, name)
	}
	if de.Type != proto.TypeDir {
		return proto.ErrNotDir
	}
	child, err := v.Get(de.FID)
	if err != nil {
		return err
	}
	if len(child.Entries) != 0 {
		return fmt.Errorf("%w: %s", proto.ErrNotEmpty, name)
	}
	delete(v.vnodes, de.FID.Vnode)
	v.markDead(de.FID.Vnode)
	delete(dn.Entries, name)
	dn.Status.Links--
	v.touchDir(dn)
	return nil
}

// Rename moves fromName in fromDir to toName in toDir (both within this
// volume). FIDs are invariant across renames (§5.3). A non-directory target
// is replaced; moving a directory under its own subtree is refused.
func (v *Volume) Rename(fromDir proto.FID, fromName string, toDir proto.FID, toName string) error {
	fdn, err := v.mutableDir(fromDir)
	if err != nil {
		return err
	}
	tdn, err := v.mutableDir(toDir)
	if err != nil {
		return err
	}
	de, ok := fdn.Entries[fromName]
	if !ok {
		return fmt.Errorf("%w: %s", proto.ErrNoEnt, fromName)
	}
	if toName == "" {
		return fmt.Errorf("%w: empty name", proto.ErrBadRequest)
	}
	if de.Type == proto.TypeDir && v.isAncestor(de.FID, toDir) {
		return fmt.Errorf("%w: cannot move a directory under itself", proto.ErrBadRequest)
	}
	if old, exists := tdn.Entries[toName]; exists {
		if old.FID == de.FID {
			return nil
		}
		switch {
		case old.Type == proto.TypeDir && de.Type == proto.TypeDir:
			target, err := v.Get(old.FID)
			if err != nil {
				return err
			}
			if len(target.Entries) != 0 {
				return fmt.Errorf("%w: %s", proto.ErrNotEmpty, toName)
			}
			delete(v.vnodes, old.FID.Vnode)
			v.markDead(old.FID.Vnode)
			tdn.Status.Links--
		case old.Type == proto.TypeDir || de.Type == proto.TypeDir:
			return proto.ErrIsDir
		default:
			if err := v.Remove(toDir, toName); err != nil {
				return err
			}
		}
	}
	delete(fdn.Entries, fromName)
	de.Name = toName
	tdn.Entries[toName] = de
	if moved, err := v.Get(de.FID); err == nil && moved.Parent == fromDir.Vnode {
		moved.Parent = toDir.Vnode
		v.markMeta(de.FID.Vnode)
	}
	if de.Type == proto.TypeDir && fdn != tdn {
		fdn.Status.Links--
		tdn.Status.Links++
	}
	v.touchDir(fdn)
	if fdn != tdn {
		v.touchDir(tdn)
	}
	return nil
}

// isAncestor reports whether dir lies within the subtree rooted at root.
func (v *Volume) isAncestor(root, dir proto.FID) bool {
	if root == dir {
		return true
	}
	rn, err := v.Get(root)
	if err != nil || rn.Status.Type != proto.TypeDir {
		return false
	}
	for _, de := range rn.Entries {
		if de.Type == proto.TypeDir && v.isAncestor(de.FID, dir) {
			return true
		}
	}
	return false
}

// SetMode updates the per-file protection bits.
func (v *Volume) SetMode(fid proto.FID, mode uint16) error {
	if err := v.checkWritable(); err != nil {
		return err
	}
	vn, err := v.Get(fid)
	if err != nil {
		return err
	}
	vn.Status.Mode = mode
	vn.Status.Version++
	v.markMeta(fid.Vnode)
	return nil
}

// SetOwner updates the owner.
func (v *Volume) SetOwner(fid proto.FID, owner string) error {
	if err := v.checkWritable(); err != nil {
		return err
	}
	vn, err := v.Get(fid)
	if err != nil {
		return err
	}
	vn.Status.Owner = owner
	vn.Status.Version++
	v.markMeta(fid.Vnode)
	return nil
}

// GetACL returns the access list protecting fid: its own if a directory,
// else the containing state is the directory's — callers pass the dir FID.
func (v *Volume) GetACL(dir proto.FID) (prot.ACL, error) {
	dn, err := v.Get(dir)
	if err != nil {
		return prot.ACL{}, err
	}
	if dn.Status.Type != proto.TypeDir {
		return prot.ACL{}, proto.ErrNotDir
	}
	return dn.ACL, nil
}

// Mount inserts a mount-point entry: a directory entry whose FID belongs to
// another volume. This is how volumes are spliced into the shared name
// space; a walker crossing an entry with a foreign volume ID re-resolves
// through the location database.
func (v *Volume) Mount(dir proto.FID, name string, target proto.FID) error {
	dn, err := v.mutableDir(dir)
	if err != nil {
		return err
	}
	if name == "" {
		return fmt.Errorf("%w: empty name", proto.ErrBadRequest)
	}
	if _, exists := dn.Entries[name]; exists {
		return fmt.Errorf("%w: %s", proto.ErrExist, name)
	}
	if target.Volume == v.id {
		return fmt.Errorf("%w: mount target in same volume", proto.ErrBadRequest)
	}
	dn.Entries[name] = proto.DirEntry{Name: name, FID: target, Type: proto.TypeDir}
	v.touchDir(dn)
	return nil
}

// Unmount removes a mount-point entry.
func (v *Volume) Unmount(dir proto.FID, name string) error {
	dn, err := v.mutableDir(dir)
	if err != nil {
		return err
	}
	de, ok := dn.Entries[name]
	if !ok {
		return fmt.Errorf("%w: %s", proto.ErrNoEnt, name)
	}
	if de.FID.Volume == v.id {
		return fmt.Errorf("%w: %s is not a mount point", proto.ErrBadRequest, name)
	}
	delete(dn.Entries, name)
	v.touchDir(dn)
	return nil
}

// GoverningACL returns the access list that protects fid: its own list for
// a directory, its containing directory's list otherwise (§3.4's
// per-directory protection).
func (v *Volume) GoverningACL(fid proto.FID) (prot.ACL, error) {
	vn, err := v.Get(fid)
	if err != nil {
		return prot.ACL{}, err
	}
	if vn.Status.Type == proto.TypeDir {
		return vn.ACL, nil
	}
	parent, ok := v.vnodes[vn.Parent]
	if !ok || parent.Status.Type != proto.TypeDir {
		// Fall back to the root's list; a parentless file is a salvage case.
		parent = v.vnodes[RootVnode]
	}
	return parent.ACL, nil
}

// SetACL replaces a directory's access list.
func (v *Volume) SetACL(dir proto.FID, acl prot.ACL) error {
	if err := v.checkWritable(); err != nil {
		return err
	}
	dn, err := v.Get(dir)
	if err != nil {
		return err
	}
	if dn.Status.Type != proto.TypeDir {
		return proto.ErrNotDir
	}
	dn.ACL = acl.Clone()
	dn.Status.Version++
	v.markMeta(dir.Vnode)
	return nil
}
