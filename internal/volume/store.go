package volume

// Durability hooks. A Volume is an in-memory structure; the store engines in
// internal/store make it durable by journalling every mutation and replaying
// the journal after a crash. This file is the narrow waist between the two:
//
//   - Header captures the volume's mutable scalar state (allocation
//     counters, byte accounting, availability), persisted with every commit.
//   - EncodeVnodeMeta / RestoreVnodeMeta round-trip one vnode's metadata —
//     status record, parent pointer, access list, directory entries — WITHOUT
//     its file content. Content travels separately (DataOf / RestoreData),
//     mirroring the metadata/blocks split of log-structured file stores.
//   - Dirty tracking records which vnodes each mutation touched, so a store
//     can journal exactly the changed records. Tracking is off by default
//     (the deterministic simulator keeps volumes volatile and pays nothing);
//     a server with a store enables it per volume.
//
// Restore* methods are for recovery and shadow replay only: they bypass
// quota, writability and clock logic, reproduce state byte-for-byte, and
// never mark anything dirty themselves.

import (
	"fmt"
	"sort"

	"itcfs/internal/prot"
	"itcfs/internal/proto"
	"itcfs/internal/wire"
)

// Header is the volume's mutable scalar state outside any vnode. Identity
// (ID, name, read-only flag) is immutable after creation and travels in the
// full Serialize image instead.
type Header struct {
	Next   uint32 // next vnode number to allocate
	Uniq   uint32 // generation counter
	Used   int64  // data bytes consumed
	Quota  int64  // byte quota (0 = unlimited)
	Online bool
}

// Encode marshals the header.
func (h Header) Encode(e *wire.Encoder) {
	e.U32(h.Next)
	e.U32(h.Uniq)
	e.I64(h.Used)
	e.I64(h.Quota)
	e.Bool(h.Online)
}

// DecodeHeader unmarshals a header written by Encode.
func DecodeHeader(d *wire.Decoder) Header {
	return Header{
		Next:   d.U32(),
		Uniq:   d.U32(),
		Used:   d.I64(),
		Quota:  d.I64(),
		Online: d.Bool(),
	}
}

// Header snapshots the volume's mutable scalar state.
func (v *Volume) Header() Header {
	return Header{Next: v.next, Uniq: v.uniq, Used: v.used, Quota: v.quota, Online: v.online}
}

// RestoreHeader replaces the mutable scalar state during recovery.
func (v *Volume) RestoreHeader(h Header) {
	v.next = h.Next
	v.uniq = h.Uniq
	v.used = h.Used
	v.quota = h.Quota
	v.online = h.Online
}

// SetClock replaces the mtime source. Recovery installs the server's clock
// into volumes deserialized without one; nil is ignored.
func (v *Volume) SetClock(c Clock) {
	if c != nil {
		v.clock = c
	}
}

// Dirty bits per vnode.
const (
	dirtyMeta uint8 = 1 << iota // status, parent, ACL or entries changed
	dirtyData                   // file content changed
)

// EnableDirtyTracking turns on mutation tracking for this volume. A server
// backed by a store enables it on every volume it installs; simulator
// volumes leave it off and pay nothing.
func (v *Volume) EnableDirtyTracking() {
	if v.dirty == nil {
		v.dirty = make(map[uint32]uint8)
		v.dead = make(map[uint32]bool)
	}
}

// TrackingDirty reports whether mutation tracking is enabled.
func (v *Volume) TrackingDirty() bool { return v.dirty != nil }

func (v *Volume) markMeta(id uint32) {
	if v.dirty != nil {
		v.dirty[id] |= dirtyMeta
	}
}

func (v *Volume) markData(id uint32) {
	if v.dirty != nil {
		v.dirty[id] |= dirtyMeta | dirtyData
	}
}

func (v *Volume) markDead(id uint32) {
	if v.dirty != nil {
		delete(v.dirty, id)
		v.dead[id] = true
	}
}

// TakeDirty drains the dirty sets, returning the touched vnode numbers in
// ascending order: vnodes whose metadata changed, vnodes whose content
// changed, and vnodes deleted since the last drain. Vnode numbers are never
// reused, so a number cannot appear as both changed and deleted.
func (v *Volume) TakeDirty() (meta, data, dead []uint32) {
	if v.dirty == nil {
		return nil, nil, nil
	}
	for id, bits := range v.dirty {
		meta = append(meta, id)
		if bits&dirtyData != 0 {
			data = append(data, id)
		}
	}
	for id := range v.dead {
		dead = append(dead, id)
	}
	sort.Slice(meta, func(i, j int) bool { return meta[i] < meta[j] })
	sort.Slice(data, func(i, j int) bool { return data[i] < data[j] })
	sort.Slice(dead, func(i, j int) bool { return dead[i] < dead[j] })
	v.dirty = make(map[uint32]uint8)
	v.dead = make(map[uint32]bool)
	return meta, data, dead
}

// EncodeVnodeMeta encodes one vnode's metadata — parent, status, ACL and
// directory entries, but not file content — for the journal. The second
// return is false when the vnode no longer exists.
func (v *Volume) EncodeVnodeMeta(id uint32) ([]byte, bool) {
	vn, ok := v.vnodes[id]
	if !ok {
		return nil, false
	}
	var e wire.Encoder
	e.U32(vn.Parent)
	vn.Status.Encode(&e)
	vn.ACL.Encode(&e)
	names := make([]string, 0, len(vn.Entries))
	for n := range vn.Entries {
		names = append(names, n)
	}
	sort.Strings(names)
	e.U32(uint32(len(names)))
	for _, n := range names {
		de := vn.Entries[n]
		e.String(de.Name)
		de.FID.Encode(&e)
		e.U8(uint8(de.Type))
	}
	return append([]byte(nil), e.Buf()...), true
}

// RestoreVnodeMeta installs a vnode's metadata during recovery, creating the
// vnode if needed and preserving any file content already restored.
func (v *Volume) RestoreVnodeMeta(id uint32, rec []byte) error {
	d := wire.NewDecoder(rec)
	parent := d.U32()
	st := proto.DecodeStatus(d)
	acl := prot.DecodeACL(d)
	n := d.ListLen(1)
	var entries map[string]proto.DirEntry
	if n > 0 || st.Type == proto.TypeDir {
		entries = make(map[string]proto.DirEntry, n)
	}
	for i := 0; i < n && d.Err() == nil; i++ {
		de := proto.DirEntry{Name: d.String(), FID: proto.DecodeFID(d), Type: proto.FileType(d.U8())}
		entries[de.Name] = de
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("volume: corrupt vnode %d metadata: %w", id, err)
	}
	vn, ok := v.vnodes[id]
	if !ok {
		vn = &Vnode{}
		v.vnodes[id] = vn
	}
	vn.Parent = parent
	vn.Status = st
	vn.ACL = acl
	vn.Entries = entries
	return nil
}

// RestoreData installs a vnode's file content during recovery. The bytes are
// copied: callers may pass slices aliasing a journal buffer.
func (v *Volume) RestoreData(id uint32, data []byte) error {
	vn, ok := v.vnodes[id]
	if !ok {
		return fmt.Errorf("volume: data for missing vnode %d", id)
	}
	vn.Data = append([]byte(nil), data...)
	return nil
}

// DataOf returns a vnode's file content for the journal. The slice is shared
// (WriteData replaces slices rather than mutating them), so callers may hold
// it across the commit without copying.
func (v *Volume) DataOf(id uint32) ([]byte, bool) {
	vn, ok := v.vnodes[id]
	if !ok {
		return nil, false
	}
	return vn.Data, true
}

// InternData replaces each vnode's file content with intern(content): the
// hook a content-addressed block index uses to store identical blocks once
// across clones, releases and replica installs. intern must return a slice
// with equal content. Safe because installed content slices are never
// edited in place — WriteData replaces the slice wholesale.
func (v *Volume) InternData(intern func([]byte) []byte) {
	for _, id := range v.VnodeIDs() {
		vn := v.vnodes[id]
		if len(vn.Data) > 0 {
			vn.Data = intern(vn.Data)
		}
	}
}

// DropVnode removes a vnode during recovery replay.
func (v *Volume) DropVnode(id uint32) {
	delete(v.vnodes, id)
}

// VnodeIDs lists the live vnode numbers in ascending order.
func (v *Volume) VnodeIDs() []uint32 {
	ids := make([]uint32, 0, len(v.vnodes))
	for id := range v.vnodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
