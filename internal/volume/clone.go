package volume

import (
	"fmt"
	"sort"

	"itcfs/internal/prot"
	"itcfs/internal/proto"
	"itcfs/internal/wire"
)

// Clone produces a frozen read-only replica of the volume under a new
// volume ID. Cloning is an atomic, inexpensive operation: vnode records are
// copied but file data slices are shared with the parent. Because WriteData
// on the read-write parent replaces slices rather than mutating them, the
// shared data is copy-on-write for free. This is the paper's mechanism for
// the orderly release of new system software: multiple coexisting versions
// of a subsystem are simply multiple read-only clones (§3.2, §5.3).
func (v *Volume) Clone(newID uint32, newName string) *Volume {
	c := &Volume{
		id:       newID,
		name:     newName,
		readOnly: true,
		online:   true,
		quota:    v.quota,
		used:     v.used,
		next:     v.next,
		uniq:     v.uniq,
		vnodes:   make(map[uint32]*Vnode, len(v.vnodes)),
		clock:    v.clock,
	}
	for id, vn := range v.vnodes {
		cp := &Vnode{
			Status: vn.Status,
			Data:   vn.Data, // shared: copy-on-write
			ACL:    vn.ACL.Clone(),
			Parent: vn.Parent,
		}
		cp.Status.FID.Volume = newID
		if vn.Entries != nil {
			cp.Entries = make(map[string]proto.DirEntry, len(vn.Entries))
			for name, de := range vn.Entries {
				de.FID.Volume = newID
				cp.Entries[name] = de
			}
		}
		c.vnodes[id] = cp
	}
	return c
}

// Serialize encodes the entire volume for transfer to another server
// (volume moves and read-only replication).
func (v *Volume) Serialize() []byte {
	var e wire.Encoder
	e.U32(v.id)
	e.String(v.name)
	e.Bool(v.readOnly)
	e.I64(v.quota)
	e.U32(v.next)
	e.U32(v.uniq)
	ids := make([]uint32, 0, len(v.vnodes))
	for id := range v.vnodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e.U32(uint32(len(ids)))
	for _, id := range ids {
		vn := v.vnodes[id]
		e.U32(id)
		e.U32(vn.Parent)
		vn.Status.Encode(&e)
		e.Bytes(vn.Data)
		vn.ACL.Encode(&e)
		names := make([]string, 0, len(vn.Entries))
		for n := range vn.Entries {
			names = append(names, n)
		}
		sort.Strings(names)
		e.U32(uint32(len(names)))
		for _, n := range names {
			de := vn.Entries[n]
			e.String(de.Name)
			de.FID.Encode(&e)
			e.U8(uint8(de.Type))
		}
	}
	return append([]byte(nil), e.Buf()...)
}

// Deserialize reconstructs a volume from Serialize output.
func Deserialize(image []byte, clock Clock) (*Volume, error) {
	if clock == nil {
		clock = func() int64 { return 0 }
	}
	d := wire.NewDecoder(image)
	v := &Volume{
		id:       d.U32(),
		name:     d.String(),
		readOnly: d.Bool(),
		quota:    d.I64(),
		next:     d.U32(),
		uniq:     d.U32(),
		online:   true,
		vnodes:   make(map[uint32]*Vnode),
		clock:    clock,
	}
	n := d.U32()
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		id := d.U32()
		vn := &Vnode{Parent: d.U32(), Status: proto.DecodeStatus(d)}
		vn.Data = append([]byte(nil), d.Bytes()...)
		vn.ACL = prot.DecodeACL(d)
		ne := d.U32()
		if ne > 0 || vn.Status.Type == proto.TypeDir {
			vn.Entries = make(map[string]proto.DirEntry)
		}
		for j := uint32(0); j < ne && d.Err() == nil; j++ {
			de := proto.DirEntry{Name: d.String(), FID: proto.DecodeFID(d), Type: proto.FileType(d.U8())}
			vn.Entries[de.Name] = de
		}
		if vn.Status.Type == proto.TypeFile {
			v.used += int64(len(vn.Data))
		}
		v.vnodes[id] = vn
	}
	if err := d.Close(); err != nil {
		return nil, fmt.Errorf("volume: corrupt image: %w", err)
	}
	if _, ok := v.vnodes[RootVnode]; !ok {
		return nil, fmt.Errorf("volume: image has no root vnode")
	}
	return v, nil
}

// SalvageReport describes what Salvage repaired.
type SalvageReport struct {
	OrphansRemoved  int // vnodes unreachable from the root
	DanglingEntries int // directory entries pointing at missing vnodes
	LinksFixed      int // link counts corrected
	BytesCorrected  bool
}

// Salvage checks and repairs volume invariants after a crash (§5.3): every
// vnode reachable from the root, no directory entry dangling, link counts
// and the used-byte total consistent with the tree.
func (v *Volume) Salvage() SalvageReport {
	var rep SalvageReport

	// Pass 1: drop directory entries pointing at missing or stale vnodes.
	reachable := map[uint32]bool{}
	links := map[uint32]int{}
	var walk func(id uint32)
	walk = func(id uint32) {
		if reachable[id] {
			return
		}
		reachable[id] = true
		vn := v.vnodes[id]
		if vn == nil || vn.Status.Type != proto.TypeDir {
			return
		}
		for name, de := range vn.Entries {
			if de.FID.Volume != v.id {
				continue // a mount point into another volume
			}
			child, ok := v.vnodes[de.FID.Vnode]
			if !ok || child.Status.FID != de.FID {
				delete(vn.Entries, name)
				v.markMeta(id)
				rep.DanglingEntries++
				continue
			}
			links[de.FID.Vnode]++
			if de.Type == proto.TypeDir {
				walk(de.FID.Vnode)
			} else {
				reachable[de.FID.Vnode] = true
			}
		}
	}
	walk(RootVnode)

	// Pass 2: remove orphans, fix link counts, recount bytes.
	var used int64
	for id, vn := range v.vnodes {
		if !reachable[id] {
			delete(v.vnodes, id)
			v.markDead(id)
			rep.OrphansRemoved++
			continue
		}
		want := links[id]
		if vn.Status.Type == proto.TypeDir {
			// A directory has 2 links plus one per same-volume subdirectory
			// (mount points live in other volumes and hold no link here).
			want = 2
			for _, de := range vn.Entries {
				if de.Type == proto.TypeDir && de.FID.Volume == v.id {
					want++
				}
			}
		}
		if vn.Status.Links != want {
			vn.Status.Links = want
			v.markMeta(id)
			rep.LinksFixed++
		}
		if vn.Status.Type == proto.TypeFile {
			used += vn.Status.Size
		}
	}
	if used != v.used {
		v.used = used
		rep.BytesCorrected = true
	}
	return rep
}

// VnodeCount returns the number of live vnodes (for tests and stats).
func (v *Volume) VnodeCount() int { return len(v.vnodes) }

// CorruptForTest deliberately breaks volume invariants — an orphan vnode, a
// dangling directory entry, a wrong link count and a wrong byte total — so
// tests (here and in packages layering above) can exercise Salvage. It
// simulates the disk damage a server crash leaves behind.
func (v *Volume) CorruptForTest() {
	// An orphan vnode.
	v.uniq++
	v.vnodes[9999] = &Vnode{Status: proto.Status{
		FID: proto.FID{Volume: v.id, Vnode: 9999, Uniq: v.uniq}, Type: proto.TypeFile, Size: 10,
	}}
	// A dangling entry and a wrong link count in the root.
	root := v.vnodes[RootVnode]
	root.Entries["ghost"] = proto.DirEntry{Name: "ghost", FID: proto.FID{Volume: v.id, Vnode: 8888, Uniq: 1}}
	root.Status.Links = 99
	// A wrong byte total.
	v.used += 12345
}
