package store

import (
	"fmt"
	"os"
	"path/filepath"
)

// FS is the small slice of a filesystem the disk engine needs: append-only
// log files, whole-file reads, atomic whole-file replacement, and
// truncation. Production uses DirFS; crash tests substitute FaultFS.
type FS interface {
	// Open opens name for appending, creating it empty if absent.
	Open(name string) (File, error)
	// ReadFile returns the whole contents of name.
	ReadFile(name string) ([]byte, error)
	// WriteFileAtomic durably replaces name with data: after it returns nil
	// a crash yields either the old contents or the new, never a mix.
	WriteFileAtomic(name string, data []byte) error
	// Truncate shortens name to size bytes.
	Truncate(name string, size int64) error
	// Remove deletes name; absent files are not an error.
	Remove(name string) error
}

// File is an append-only log file handle.
type File interface {
	// Append writes b at the end of the file.
	Append(b []byte) error
	// Sync flushes everything appended so far to stable storage.
	Sync() error
	Close() error
}

// DirFS is the operating-system FS rooted at a directory.
type DirFS string

func (d DirFS) path(name string) string { return filepath.Join(string(d), name) }

// Open opens name for appending, creating it empty if absent.
func (d DirFS) Open(name string) (File, error) {
	f, err := os.OpenFile(d.path(name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// ReadFile returns the whole contents of name.
func (d DirFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(d.path(name))
}

// WriteFileAtomic writes data to a temporary file, fsyncs it, renames it
// over name, and fsyncs the directory so the rename itself is durable.
func (d DirFS) WriteFileAtomic(name string, data []byte) error {
	tmp := d.path(name + ".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, d.path(name)); err != nil {
		return err
	}
	return d.syncDir()
}

// Truncate shortens name to size bytes.
func (d DirFS) Truncate(name string, size int64) error {
	return os.Truncate(d.path(name), size)
}

// Remove deletes name; absent files are not an error.
func (d DirFS) Remove(name string) error {
	err := os.Remove(d.path(name))
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}

func (d DirFS) syncDir() error {
	dir, err := os.Open(string(d))
	if err != nil {
		return err
	}
	defer dir.Close()
	if err := dir.Sync(); err != nil {
		return fmt.Errorf("store: fsync %s: %w", d, err)
	}
	return nil
}

type osFile struct{ f *os.File }

func (o osFile) Append(b []byte) error {
	_, err := o.f.Write(b)
	return err
}

func (o osFile) Sync() error  { return o.f.Sync() }
func (o osFile) Close() error { return o.f.Close() }
