// Package store defines the durable-storage interface behind Vice volume
// state, and the commit records that cross it.
//
// The interface is a narrow waist: internal/vice mutates its in-memory
// volumes exactly as before, then hands the store one Commit describing what
// changed — the volume header plus the metadata records and file contents of
// the touched vnodes, split into separate fields so an engine can route
// small metadata records and large data blobs differently (the classic
// metadata/blocks layering of log-structured file stores). An engine makes
// the commit durable however it likes:
//
//   - memstore keeps shadow volumes in memory. It verifies the commit
//     protocol without touching disk, and is what the deterministic
//     simulator uses — no clocks, no fsync, no perturbation.
//   - walstore appends each commit to a checksummed write-ahead log with
//     group-commit fsync and periodic checkpoints, and recovers by replay.
//
// Location-database and protection-database changes flow through the same
// store (PutLoc/PutProt) so a server restart loses neither.
//
// The durability contract: an operation is durable once Sync returns nil
// after its Commit. Recover returns the state rebuilt from everything
// durable — a prefix of the committed operations that includes at least all
// synced ones and never a torn suffix.
package store

import (
	"fmt"
	"sort"

	"itcfs/internal/prot"
	"itcfs/internal/proto"
	"itcfs/internal/volume"
	"itcfs/internal/wire"
)

// VnodeMeta is one vnode's metadata record (volume.EncodeVnodeMeta form).
type VnodeMeta struct {
	Vnode uint32
	Meta  []byte
}

// VnodeData is one vnode's file content.
type VnodeData struct {
	Vnode uint32
	Data  []byte
}

// Commit describes the durable effect of one logical operation on one
// volume: the post-state of every vnode the operation touched, plus the
// volume header. Applying a commit to the volume's prior state must be
// idempotent — recovery may replay a commit whose effects already partially
// survive.
type Commit struct {
	Vol     uint32
	Hdr     volume.Header
	Deletes []uint32    // vnodes removed, ascending
	Meta    []VnodeMeta // metadata records changed, ascending by vnode
	Data    []VnodeData // file contents changed, ascending by vnode
}

// Encode marshals the commit.
func (c Commit) Encode(e *wire.Encoder) {
	e.U32(c.Vol)
	c.Hdr.Encode(e)
	e.ListLen(len(c.Deletes))
	for _, id := range c.Deletes {
		e.U32(id)
	}
	e.ListLen(len(c.Meta))
	for _, m := range c.Meta {
		e.U32(m.Vnode)
		e.Bytes(m.Meta)
	}
	e.ListLen(len(c.Data))
	for _, d := range c.Data {
		e.U32(d.Vnode)
		e.Bytes(d.Data)
	}
}

// DecodeCommit unmarshals a commit. Byte fields alias the decoder's buffer.
func DecodeCommit(d *wire.Decoder) Commit {
	c := Commit{Vol: d.U32(), Hdr: volume.DecodeHeader(d)}
	n := d.ListLen(4)
	for i := 0; i < n && d.Err() == nil; i++ {
		c.Deletes = append(c.Deletes, d.U32())
	}
	n = d.ListLen(8)
	for i := 0; i < n && d.Err() == nil; i++ {
		c.Meta = append(c.Meta, VnodeMeta{Vnode: d.U32(), Meta: d.Bytes()})
	}
	n = d.ListLen(8)
	for i := 0; i < n && d.Err() == nil; i++ {
		c.Data = append(c.Data, VnodeData{Vnode: d.U32(), Data: d.Bytes()})
	}
	return c
}

// CommitOf drains v's dirty sets into a commit record. The volume must have
// dirty tracking enabled. Data slices are shared with the volume (WriteData
// replaces slices, so they are stable).
func CommitOf(v *volume.Volume) Commit {
	meta, data, dead := v.TakeDirty()
	c := Commit{Vol: v.ID(), Hdr: v.Header(), Deletes: dead}
	for _, id := range meta {
		if rec, ok := v.EncodeVnodeMeta(id); ok {
			c.Meta = append(c.Meta, VnodeMeta{Vnode: id, Meta: rec})
		}
	}
	for _, id := range data {
		if b, ok := v.DataOf(id); ok {
			c.Data = append(c.Data, VnodeData{Vnode: id, Data: b})
		}
	}
	return c
}

// ApplyCommit replays a commit onto v (recovery and shadow maintenance).
func ApplyCommit(v *volume.Volume, c Commit) error {
	if c.Vol != v.ID() {
		return fmt.Errorf("store: commit for volume %d applied to %d", c.Vol, v.ID())
	}
	for _, id := range c.Deletes {
		v.DropVnode(id)
	}
	for _, m := range c.Meta {
		if err := v.RestoreVnodeMeta(m.Vnode, m.Meta); err != nil {
			return err
		}
	}
	for _, d := range c.Data {
		if err := v.RestoreData(d.Vnode, d.Data); err != nil {
			return err
		}
	}
	v.RestoreHeader(c.Hdr)
	return nil
}

// LocOp is one location-database change: entries installed and prefixes
// removed, in the order the server applied them.
type LocOp struct {
	Entries []proto.LocEntry
	Remove  []string
}

// VolumeImage is one volume's full Serialize image, used in checkpoints and
// volume creation/installation records.
type VolumeImage struct {
	ID    uint32
	Image []byte
}

// Checkpoint is a full snapshot of server state: after it is durable the
// engine may discard all earlier history.
type Checkpoint struct {
	Prot    []byte           // prot.DB.Snapshot image
	Loc     []proto.LocEntry // complete location database, sorted by prefix
	Volumes []VolumeImage    // every volume, ascending by ID
}

// VolumeReport describes one volume's recovery outcome.
type VolumeReport struct {
	ID      uint32
	Name    string
	Vnodes  int
	Salvage volume.SalvageReport
}

// Report summarizes a recovery pass: how much of the log was replayed, what
// was discarded as torn or corrupt, and what salvage repaired per volume.
// Its text form is sorted and byte-stable for identical logs.
type Report struct {
	CheckpointSeq    uint64 // seqno the checkpoint covered (0 = none)
	LastSeq          uint64 // last record applied
	Replayed         int    // records applied from the log
	Skipped          int    // records at or below the checkpoint seqno
	DiscardedRecords int    // torn or corrupt records dropped from the tail
	DiscardedBytes   int64  // bytes dropped with them
	Notes            []string
	Volumes          []VolumeReport // ascending by ID
}

// Lines renders the report as stable, sorted text lines.
func (r Report) Lines() []string {
	lines := []string{fmt.Sprintf(
		"recovery: checkpoint seq=%d replayed=%d skipped=%d last seq=%d discarded=%d records (%d bytes)",
		r.CheckpointSeq, r.Replayed, r.Skipped, r.LastSeq, r.DiscardedRecords, r.DiscardedBytes)}
	notes := append([]string(nil), r.Notes...)
	sort.Strings(notes)
	for _, n := range notes {
		lines = append(lines, "note: "+n)
	}
	vols := append([]VolumeReport(nil), r.Volumes...)
	sort.Slice(vols, func(i, j int) bool { return vols[i].ID < vols[j].ID })
	for _, vr := range vols {
		s := vr.Salvage
		lines = append(lines, fmt.Sprintf(
			"volume %d (%s): vnodes=%d orphans=%d dangling=%d links=%d bytes_corrected=%v",
			vr.ID, vr.Name, vr.Vnodes, s.OrphansRemoved, s.DanglingEntries, s.LinksFixed, s.BytesCorrected))
	}
	return lines
}

// String renders Lines joined by newlines, with a trailing newline.
func (r Report) String() string {
	var out []byte
	for _, l := range r.Lines() {
		out = append(out, l...)
		out = append(out, '\n')
	}
	return string(out)
}

// Recovery is everything a server needs to resume after Open/Recover:
// rebuilt volumes (already salvaged), the protection and location databases,
// and the report of what recovery did.
type Recovery struct {
	ProtSnapshot  []byte          // last checkpointed prot image (nil = none)
	ProtMutations []prot.Mutation // mutations since, in order
	LocOps        []LocOp         // location changes since, in order
	Volumes       []*volume.Volume
	Report        Report
}

// Store is the durable engine behind a Vice server. Implementations must be
// safe for concurrent use. The caller serializes Commit/PutLoc/PutProt per
// logical operation (the server's apply lock); Sync may be called
// concurrently from many committers and coalesces (group commit).
type Store interface {
	// BeginVolume records a volume's existence with its full initial image
	// (creation, clone installation, volume moves).
	BeginVolume(id uint32, image []byte) error
	// DropVolume forgets a volume and all its history.
	DropVolume(id uint32) error
	// Commit records the durable effect of one logical operation.
	Commit(c Commit) error
	// PutLoc records a location-database change.
	PutLoc(entries []proto.LocEntry, remove []string) error
	// PutProt records a protection-database mutation.
	PutProt(m prot.Mutation) error
	// Sync makes everything committed so far durable. An operation may be
	// acknowledged to a client only after Sync returns nil.
	Sync() error
	// Recover returns the state rebuilt at Open time. It reflects every
	// synced operation and possibly a few later committed-but-unsynced ones;
	// never a torn suffix.
	Recover() (*Recovery, error)
	// Checkpoint atomically replaces all history with a full snapshot.
	Checkpoint(cp Checkpoint) error
	// Close releases resources. It does not imply Sync.
	Close() error
}
