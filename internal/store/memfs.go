package store

import (
	"fmt"
	"os"
	"sync"
)

// MemFS is an in-memory FS for tests: same contract as DirFS with no disk.
type MemFS struct {
	mu    sync.Mutex
	files map[string][]byte // guarded by mu
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string][]byte)}
}

// SetFile installs contents directly (test and fuzz preloading).
func (m *MemFS) SetFile(name string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = append([]byte(nil), data...)
}

// Bytes returns a copy of a file's contents and whether it exists.
func (m *MemFS) Bytes(name string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[name]
	return append([]byte(nil), b...), ok
}

// Open opens name for appending, creating it empty if absent.
func (m *MemFS) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		m.files[name] = nil
	}
	return &memFile{fs: m, name: name}, nil
}

// ReadFile returns the whole contents of name.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("memfs: %s: %w", name, os.ErrNotExist)
	}
	return append([]byte(nil), b...), nil
}

// WriteFileAtomic replaces name with data.
func (m *MemFS) WriteFileAtomic(name string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = append([]byte(nil), data...)
	return nil
}

// Truncate shortens name to size bytes.
func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[name]
	if !ok {
		return fmt.Errorf("memfs: %s: %w", name, os.ErrNotExist)
	}
	if size < int64(len(b)) {
		m.files[name] = b[:size]
	}
	return nil
}

// Remove deletes name; absent files are not an error.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.files, name)
	return nil
}

type memFile struct {
	fs   *MemFS
	name string
}

func (f *memFile) Append(b []byte) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.fs.files[f.name] = append(f.fs.files[f.name], b...)
	return nil
}

func (f *memFile) Sync() error  { return nil }
func (f *memFile) Close() error { return nil }
