package store

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
)

// Crash-injection filesystem. FaultFS models a disk under a machine that
// loses power at a chosen moment:
//
//   - Every durability-relevant operation (append, fsync, atomic replace,
//     truncate, remove) counts as one crash event. Constructing the FS with
//     CrashAt == n makes the n-th event fail with ErrCrashed — possibly
//     after partial effect — and every operation after it fail too.
//   - Survivors() then reconstructs what stable storage holds. Bytes synced
//     before the crash always survive intact (that is the fsync contract).
//     Unsynced bytes are volatile: in Strict mode they are wholly lost; in
//     the default (generous) mode a seeded-random prefix of them survives,
//     possibly with flipped bits — the torn sector a real disk leaves.
//
// Everything is driven by a seeded generator, so a (seed, CrashAt) pair
// replays the identical crash. Run once with CrashAt == 0 (never crash) and
// read Events() to enumerate the crash points a workload exposes.
type FaultFS struct {
	mu   sync.Mutex
	seed int64      // guarded by mu
	rng  *rand.Rand // guarded by mu
	// 1-based event number to crash on; 0 = never.
	crashAt int  // guarded by mu
	event   int  // guarded by mu
	crashed bool // guarded by mu
	// Strict drops every unsynced byte at Survivors time, so recovered state
	// is exactly the synced (acknowledged) prefix. Set before use, never
	// mutated during a run.
	Strict bool
	files  map[string]*faultFile // guarded by mu
}

type faultFile struct {
	data   []byte
	synced int // bytes guaranteed durable
}

// ErrCrashed is returned by every FaultFS operation at and after the
// injected crash point.
var ErrCrashed = errors.New("store: injected crash")

// NewFaultFS returns a crash-injecting in-memory FS. crashAt is the 1-based
// durability event to crash on; 0 disables crashing (use Events to count).
func NewFaultFS(seed int64, crashAt int) *FaultFS {
	return &FaultFS{
		seed:    seed,
		rng:     rand.New(rand.NewSource(seed)),
		crashAt: crashAt,
		files:   make(map[string]*faultFile),
	}
}

// Events returns the number of durability events so far.
func (f *FaultFS) Events() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.event
}

// CrashNow fails every subsequent operation immediately, independent of the
// configured crash point — the disk dying mid-run rather than at a chosen
// event.
func (f *FaultFS) CrashNow() {
	f.mu.Lock()
	f.crashed = true
	f.mu.Unlock()
}

// Crashed reports whether the injected crash has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// step counts one durability event and reports whether this is the crash.
// Callers hold f.mu.
//
//itcvet:holds mu
func (f *FaultFS) step() bool {
	if f.crashed {
		return true
	}
	f.event++
	if f.crashAt != 0 && f.event >= f.crashAt {
		f.crashed = true
		return true
	}
	return false
}

// file returns name's entry, creating it if absent. Callers hold f.mu.
//
//itcvet:holds mu
func (f *FaultFS) file(name string) *faultFile {
	ff, ok := f.files[name]
	if !ok {
		ff = &faultFile{}
		f.files[name] = ff
	}
	return ff
}

// Open opens name for appending, creating it empty if absent. Opening is
// not a durability event.
func (f *FaultFS) Open(name string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	f.file(name)
	return &FaultFile{fs: f, name: name}, nil
}

// ReadFile returns the whole contents of name.
func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	ff, ok := f.files[name]
	if !ok {
		return nil, fmt.Errorf("faultfs: %s: %w", name, os.ErrNotExist)
	}
	return append([]byte(nil), ff.data...), nil
}

// WriteFileAtomic replaces name with data. On crash either the old or the
// new contents survive whole — the rename itself is atomic.
func (f *FaultFS) WriteFileAtomic(name string, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if crash := f.step(); crash {
		if f.rng.Intn(2) == 0 { // rename won the race with the power cut
			ff := f.file(name)
			ff.data = append([]byte(nil), data...)
			ff.synced = len(ff.data)
		}
		return ErrCrashed
	}
	ff := f.file(name)
	ff.data = append([]byte(nil), data...)
	ff.synced = len(ff.data)
	return nil
}

// Truncate shortens name to size bytes. On crash the truncation may or may
// not have reached the disk.
func (f *FaultFS) Truncate(name string, size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	crash := f.step()
	apply := !crash || f.rng.Intn(2) == 0
	if apply {
		if ff, ok := f.files[name]; ok && size < int64(len(ff.data)) {
			ff.data = ff.data[:size]
			if ff.synced > int(size) {
				ff.synced = int(size)
			}
		}
	}
	if crash {
		return ErrCrashed
	}
	return nil
}

// Remove deletes name. On crash the removal may or may not have happened.
func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	crash := f.step()
	if !crash || f.rng.Intn(2) == 0 {
		delete(f.files, name)
	}
	if crash {
		return ErrCrashed
	}
	return nil
}

// FaultFile is the crash-injecting append handle FaultFS.Open returns.
type FaultFile struct {
	fs   *FaultFS
	name string
}

// Append writes b at the end of the file. On crash only a random prefix of
// b lands, and none of it is durable.
func (f *FaultFile) Append(b []byte) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	ff := f.fs.file(f.name)
	if crash := f.fs.step(); crash {
		ff.data = append(ff.data, b[:f.fs.rng.Intn(len(b)+1)]...)
		return ErrCrashed
	}
	ff.data = append(ff.data, b...)
	return nil
}

// Sync flushes appended bytes to stable storage. On crash the flush is
// dropped: nothing new becomes durable.
func (f *FaultFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if crash := f.fs.step(); crash {
		return ErrCrashed
	}
	ff := f.fs.file(f.name)
	ff.synced = len(ff.data)
	return nil
}

// Close releases the handle. Closing is not a durability event.
func (f *FaultFile) Close() error { return nil }

// Survivors reconstructs stable storage after the crash as a fault-free
// MemFS to reopen a store over. Synced bytes survive intact. Unsynced bytes
// are wholly lost in Strict mode; otherwise a seeded-random prefix of them
// survives, with a chance of flipped bits. Deterministic per (seed,
// CrashAt) and idempotent.
func (f *FaultFS) Survivors() *MemFS {
	f.mu.Lock()
	defer f.mu.Unlock()
	rng := rand.New(rand.NewSource(f.seed ^ 0x5eed))
	out := NewMemFS()
	names := make([]string, 0, len(f.files))
	for name := range f.files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ff := f.files[name]
		keep := ff.synced
		if !f.Strict {
			keep += rng.Intn(len(ff.data) - ff.synced + 1)
		}
		b := append([]byte(nil), ff.data[:keep]...)
		if !f.Strict {
			for i := ff.synced; i < keep; i++ {
				if rng.Intn(16) == 0 {
					b[i] ^= 1 << uint(rng.Intn(8))
				}
			}
		}
		out.SetFile(name, b)
	}
	return out
}
