package store

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"itcfs/internal/prot"
	"itcfs/internal/proto"
	"itcfs/internal/volume"
	"itcfs/internal/wire"
)

func newVol(t *testing.T) *volume.Volume {
	t.Helper()
	var tick int64
	acl := prot.NewACL()
	acl.Grant("satya", prot.RightsAll)
	v := volume.New(7, "user.satya", acl, 0, "satya", func() int64 { tick++; return tick })
	v.EnableDirtyTracking()
	v.TakeDirty() // discard the bootstrap root marks
	return v
}

func TestCommitRoundTrip(t *testing.T) {
	c := Commit{
		Vol:     7,
		Hdr:     volume.Header{Next: 9, Uniq: 12, Used: 345, Quota: 1 << 20, Online: true},
		Deletes: []uint32{3, 5},
		Meta:    []VnodeMeta{{Vnode: 2, Meta: []byte("meta-bytes")}},
		Data:    []VnodeData{{Vnode: 2, Data: []byte("contents")}, {Vnode: 4, Data: nil}},
	}
	var e wire.Encoder
	c.Encode(&e)
	d := wire.NewDecoder(e.Buf())
	got := DecodeCommit(d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if got.Vol != c.Vol || got.Hdr != c.Hdr ||
		!reflect.DeepEqual(got.Deletes, c.Deletes) ||
		!reflect.DeepEqual(got.Meta, c.Meta) ||
		got.Data[0].Vnode != 2 || string(got.Data[0].Data) != "contents" ||
		got.Data[1].Vnode != 4 || len(got.Data[1].Data) != 0 {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, c)
	}
}

func TestDecodeCommitRejectsGarbage(t *testing.T) {
	for _, in := range [][]byte{nil, {1}, bytes.Repeat([]byte{0xff}, 16)} {
		d := wire.NewDecoder(in)
		DecodeCommit(d)
		if d.Close() == nil {
			t.Fatalf("DecodeCommit(%x): want decode error", in)
		}
	}
}

// TestApplyCommitReplaysMutations drives a volume through every mutation
// class, captures one commit per operation, and replays them onto a shadow
// copy: the shadow must end byte-identical to the original.
func TestApplyCommitReplaysMutations(t *testing.T) {
	v := newVol(t)
	shadow, err := volume.Deserialize(v.Serialize(), nil)
	if err != nil {
		t.Fatal(err)
	}

	step := func(name string, fn func() error) {
		t.Helper()
		if err := fn(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c := CommitOf(v)
		if c.Vol != v.ID() {
			t.Fatalf("%s: commit for volume %d", name, c.Vol)
		}
		if err := ApplyCommit(shadow, c); err != nil {
			t.Fatalf("%s: replay: %v", name, err)
		}
	}

	root := v.Root()
	var file, dir proto.FID
	step("create", func() error {
		vn, err := v.Create(root, "paper.mss", 0o644, "satya")
		if err == nil {
			file = vn.Status.FID
		}
		return err
	})
	step("write", func() error { _, err := v.WriteData(file, []byte("scale governs")); return err })
	step("mkdir", func() error {
		vn, err := v.MakeDir(root, "drafts", 0o755, "satya")
		if err == nil {
			dir = vn.Status.FID
		}
		return err
	})
	step("symlink", func() error { _, err := v.Symlink(dir, "latest", "/paper.mss"); return err })
	step("link", func() error { return v.Link(dir, "copy", file) })
	step("rename", func() error { return v.Rename(root, "paper.mss", dir, "paper-v2.mss") })
	step("setmode", func() error { return v.SetMode(file, 0o600) })
	step("setowner", func() error { return v.SetOwner(file, "bovik") })
	step("setacl", func() error {
		acl := prot.NewACL()
		acl.Grant("bovik", prot.RightRead)
		return v.SetACL(dir, acl)
	})
	step("remove", func() error { return v.Remove(dir, "latest") })
	step("rmdir", func() error {
		if err := v.Remove(dir, "copy"); err != nil {
			return err
		}
		if err := v.Remove(dir, "paper-v2.mss"); err != nil {
			return err
		}
		return v.RemoveDir(root, "drafts")
	})

	if got, want := shadow.Serialize(), v.Serialize(); !bytes.Equal(got, want) {
		t.Fatalf("shadow diverged after replay:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
}

func TestApplyCommitWrongVolume(t *testing.T) {
	v := newVol(t)
	if err := ApplyCommit(v, Commit{Vol: v.ID() + 1}); err == nil {
		t.Fatal("want volume-ID mismatch error")
	}
}

func TestReportLinesSortedAndStable(t *testing.T) {
	rep := Report{
		CheckpointSeq: 4, LastSeq: 9, Replayed: 5, Skipped: 1,
		DiscardedRecords: 2, DiscardedBytes: 37,
		Notes: []string{"zeta", "alpha"},
		Volumes: []VolumeReport{
			{ID: 9, Name: "b", Vnodes: 3},
			{ID: 2, Name: "a", Vnodes: 1},
		},
	}
	a, b := rep.String(), rep.String()
	if a != b {
		t.Fatal("Report.String not stable")
	}
	lines := rep.Lines()
	if len(lines) != 5 {
		t.Fatalf("lines = %q", lines)
	}
	if lines[1] != "note: alpha" || lines[2] != "note: zeta" {
		t.Fatalf("notes not sorted: %q", lines)
	}
	if !bytes.Contains([]byte(lines[3]), []byte("volume 2")) ||
		!bytes.Contains([]byte(lines[4]), []byte("volume 9")) {
		t.Fatalf("volumes not sorted: %q", lines)
	}
}

// --- FaultFS ---

// faultWorkload appends three records and syncs after each, returning the
// synced bytes acknowledged so far at each step.
func faultWorkload(fsys FS) (acked [][]byte, err error) {
	f, err := fsys.Open("wal")
	if err != nil {
		return nil, err
	}
	var all []byte
	for _, chunk := range [][]byte{[]byte("alpha-"), []byte("beta-"), []byte("gamma")} {
		if err := f.Append(chunk); err != nil {
			return acked, err
		}
		if err := f.Sync(); err != nil {
			return acked, err
		}
		all = append(all, chunk...)
		acked = append(acked, append([]byte(nil), all...))
	}
	return acked, f.Close()
}

func TestFaultFSNoCrashMatchesMemFS(t *testing.T) {
	f := NewFaultFS(1, 0)
	acked, err := faultWorkload(f)
	if err != nil {
		t.Fatal(err)
	}
	if f.Crashed() {
		t.Fatal("crashed with crashAt=0")
	}
	if f.Events() == 0 {
		t.Fatal("no durability events counted")
	}
	got, err := f.Survivors().ReadFile("wal")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, acked[len(acked)-1]) {
		t.Fatalf("survivors = %q", got)
	}
}

func TestFaultFSDeterministicPerSeed(t *testing.T) {
	events := func() int {
		f := NewFaultFS(1, 0)
		_, _ = faultWorkload(f)
		return f.Events()
	}()
	for crashAt := 1; crashAt <= events; crashAt++ {
		var imgs [2][]byte
		for run := 0; run < 2; run++ {
			f := NewFaultFS(42, crashAt)
			_, err := faultWorkload(f)
			if !errors.Is(err, ErrCrashed) {
				t.Fatalf("crashAt=%d: err = %v", crashAt, err)
			}
			if !f.Crashed() {
				t.Fatalf("crashAt=%d: Crashed() = false", crashAt)
			}
			img, rerr := f.Survivors().ReadFile("wal")
			if rerr != nil {
				img = nil
			}
			imgs[run] = img
		}
		if !bytes.Equal(imgs[0], imgs[1]) {
			t.Fatalf("crashAt=%d: survivors differ between identical runs", crashAt)
		}
	}
}

func TestFaultFSStrictKeepsExactSyncedPrefix(t *testing.T) {
	// At every crash point, strict survivors must hold exactly the bytes
	// acked by the last completed sync — nothing from the unsynced tail.
	f := NewFaultFS(7, 0)
	if _, err := faultWorkload(f); err != nil {
		t.Fatal(err)
	}
	events := f.Events()
	for crashAt := 1; crashAt <= events; crashAt++ {
		f := NewFaultFS(7, crashAt)
		f.Strict = true
		acked, err := faultWorkload(f)
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("crashAt=%d: err = %v", crashAt, err)
		}
		var want []byte
		if len(acked) > 0 {
			want = acked[len(acked)-1]
		}
		got, rerr := f.Survivors().ReadFile("wal")
		if rerr != nil {
			got = nil
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("crashAt=%d: strict survivors = %q, want acked prefix %q", crashAt, got, want)
		}
	}
}

func TestFaultFSPostCrashOpsFail(t *testing.T) {
	f := NewFaultFS(3, 1)
	if _, err := faultWorkload(f); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v", err)
	}
	if err := f.WriteFileAtomic("x", []byte("y")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: %v", err)
	}
}

func TestMemFSAtomicWriteAndTruncate(t *testing.T) {
	m := NewMemFS()
	if err := m.WriteFileAtomic("ckpt", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	b, err := m.ReadFile("ckpt")
	if err != nil || string(b) != "hello" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	if err := m.Truncate("ckpt", 2); err != nil {
		t.Fatal(err)
	}
	if b, _ := m.ReadFile("ckpt"); string(b) != "he" {
		t.Fatalf("after truncate: %q", b)
	}
	if err := m.Remove("ckpt"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadFile("ckpt"); err == nil {
		t.Fatal("read after remove succeeded")
	}
	if err := m.Remove("ckpt"); err != nil {
		t.Fatalf("second remove: %v", err)
	}
}
