package walstore

import (
	"encoding/hex"
	"testing"

	"itcfs/internal/proto"
	"itcfs/internal/store"
	"itcfs/internal/volume"
	"itcfs/internal/wire"
)

// These goldens pin the on-disk encoding. A mismatch means the WAL format
// changed: logs written by earlier builds will no longer replay. If the
// change is deliberate, bump the magic version (ITCWAL01 → ITCWAL02) and
// update the hex here; never let the format drift silently under an
// unchanged magic.

const (
	goldenMagicWAL  = "ITCWAL01"
	goldenMagicCkpt = "ITCCKP01"

	// frameRecord(9, kindCommit, commit{Vol 7, Hdr{2,3,4,5,online},
	// Deletes[1], Meta[{2,"m"}], Data[{2,"d"}]})
	goldenRecordHex = "48000000107f830709000000000000000307000000020000000300000004000000000000000500000000000000010100000001000000010000000200000001000000" +
		"6d01000000020000000100000064"

	// encodeCheckpoint(4, {Prot "p", Loc [{"/", 1, "s0"}], no volumes})
	goldenCkptHex = "495443434b50303128000000f40ee37b0400000000000000010000007001000000010000002f010000000200000073300000000000000000"
)

func goldenCommit() store.Commit {
	return store.Commit{
		Vol:     7,
		Hdr:     volume.Header{Next: 2, Uniq: 3, Used: 4, Quota: 5, Online: true},
		Deletes: []uint32{1},
		Meta:    []store.VnodeMeta{{Vnode: 2, Meta: []byte("m")}},
		Data:    []store.VnodeData{{Vnode: 2, Data: []byte("d")}},
	}
}

func TestGoldenMagics(t *testing.T) {
	if walMagic != goldenMagicWAL || ckptMagic != goldenMagicCkpt {
		t.Fatalf("magic drifted: wal=%q ckpt=%q", walMagic, ckptMagic)
	}
}

func TestGoldenRecordEncoding(t *testing.T) {
	var e wire.Encoder
	goldenCommit().Encode(&e)
	rec := frameRecord(9, kindCommit, e.Buf())
	if got := hex.EncodeToString(rec); got != goldenRecordHex {
		t.Fatalf("record encoding drifted:\n got %s\nwant %s", got, goldenRecordHex)
	}

	// The golden bytes must also decode back to the same record.
	seq, kind, body, next, err := readRecord(rec, 0)
	if err != nil {
		t.Fatalf("readRecord(golden): %v", err)
	}
	if seq != 9 || kind != kindCommit || next != len(rec) {
		t.Fatalf("readRecord(golden) = seq %d kind %d next %d", seq, kind, next)
	}
	d := wire.NewDecoder(body)
	c := store.DecodeCommit(d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if c.Vol != 7 || c.Hdr != goldenCommit().Hdr || len(c.Meta) != 1 || string(c.Data[0].Data) != "d" {
		t.Fatalf("golden decode = %+v", c)
	}
}

func TestGoldenCheckpointEncoding(t *testing.T) {
	cp := store.Checkpoint{
		Prot: []byte("p"),
		Loc:  []proto.LocEntry{{Prefix: "/", Volume: 1, Custodian: "s0"}},
	}
	buf := encodeCheckpoint(4, cp)
	if got := hex.EncodeToString(buf); got != goldenCkptHex {
		t.Fatalf("checkpoint encoding drifted:\n got %s\nwant %s", got, goldenCkptHex)
	}
	seq, dec, err := decodeCheckpoint(buf)
	if err != nil {
		t.Fatalf("decodeCheckpoint(golden): %v", err)
	}
	if seq != 4 || string(dec.Prot) != "p" || len(dec.Loc) != 1 || dec.Loc[0].Prefix != "/" {
		t.Fatalf("golden checkpoint decode = seq %d %+v", seq, dec)
	}
}

// TestGoldenCRCCatchesFlips flips one bit of the golden record and requires
// the reader to reject it.
func TestGoldenCRCCatchesFlips(t *testing.T) {
	rec, err := hex.DecodeString(goldenRecordHex)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{8, 12, len(rec) - 1} { // seq, body, last byte
		mut := append([]byte(nil), rec...)
		mut[i] ^= 0x40
		if _, _, _, _, rerr := readRecord(mut, 0); rerr == nil {
			t.Fatalf("bit flip at %d went undetected", i)
		}
	}
}
