package walstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"itcfs/internal/proto"
	"itcfs/internal/store"
	"itcfs/internal/wire"
)

// On-disk format.
//
// wal.log:
//
//	"ITCWAL01"                                 8-byte magic
//	record*                                    until EOF
//
// record:
//
//	u32 len | u32 crc | payload                len = len(payload), crc = CRC-32C(payload)
//
// payload:
//
//	u64 seq | u8 kind | body                   seq strictly increases by 1
//
// bodies:
//
//	kindBegin:  u32 volume | bytes image       full volume.Serialize image
//	kindDrop:   u32 volume
//	kindCommit: store.Commit encoding
//	kindLoc:    proto.LocInstallArgs encoding
//	kindProt:   prot.Mutation encoding
//
// checkpoint:
//
//	"ITCCKP01" | u32 len | u32 crc | payload
//
// checkpoint payload:
//
//	u64 seq                                    log seqno the snapshot covers
//	bytes prot                                 prot.DB.Snapshot image
//	u32 nloc | LocEntry*                       complete location database
//	u32 nvol | (u32 volume | bytes image)*     every volume
//
// All integers little-endian (the wire package's convention). A record is
// valid only if its full len bytes are present and the CRC matches; the
// first invalid record ends the log — everything after it is a torn tail
// and is discarded. Golden tests in golden_test.go pin these bytes.
const (
	walMagic  = "ITCWAL01"
	ckptMagic = "ITCCKP01"

	walName  = "wal.log"
	ckptName = "checkpoint"

	// maxRecord caps one record's payload; anything larger is corruption.
	maxRecord = 1 << 28
)

// Record kinds.
const (
	kindBegin  uint8 = 1
	kindDrop   uint8 = 2
	kindCommit uint8 = 3
	kindLoc    uint8 = 4
	kindProt   uint8 = 5
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var errTorn = errors.New("walstore: torn or corrupt record")

// frameRecord builds one framed record: header plus seq/kind-stamped body.
func frameRecord(seq uint64, kind uint8, body []byte) []byte {
	payload := make([]byte, 0, 9+len(body))
	payload = binary.LittleEndian.AppendUint64(payload, seq)
	payload = append(payload, kind)
	payload = append(payload, body...)
	out := make([]byte, 0, 8+len(payload))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, castagnoli))
	return append(out, payload...)
}

// readRecord parses the record at buf[off:], returning the payload past the
// seq/kind stamp. It returns errTorn for anything malformed: short header,
// oversized length, missing bytes, CRC mismatch.
func readRecord(buf []byte, off int) (seq uint64, kind uint8, body []byte, next int, err error) {
	if off+8 > len(buf) {
		return 0, 0, nil, 0, errTorn
	}
	n := binary.LittleEndian.Uint32(buf[off:])
	crc := binary.LittleEndian.Uint32(buf[off+4:])
	if n > maxRecord || n < 9 {
		return 0, 0, nil, 0, errTorn
	}
	end := off + 8 + int(n)
	if end > len(buf) {
		return 0, 0, nil, 0, errTorn
	}
	payload := buf[off+8 : end]
	if crc32.Checksum(payload, castagnoli) != crc {
		return 0, 0, nil, 0, errTorn
	}
	return binary.LittleEndian.Uint64(payload), payload[8], payload[9:], end, nil
}

func encodeVolumeBody(id uint32, image []byte) []byte {
	var e wire.Encoder
	e.U32(id)
	e.Bytes(image)
	return append([]byte(nil), e.Buf()...)
}

func encodeCheckpoint(seq uint64, cp store.Checkpoint) []byte {
	var e wire.Encoder
	e.U64(seq)
	e.Bytes(cp.Prot)
	e.ListLen(len(cp.Loc))
	for _, le := range cp.Loc {
		le.Encode(&e)
	}
	e.ListLen(len(cp.Volumes))
	for _, vi := range cp.Volumes {
		e.U32(vi.ID)
		e.Bytes(vi.Image)
	}
	payload := e.Buf()
	out := make([]byte, 0, len(ckptMagic)+8+len(payload))
	out = append(out, ckptMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, castagnoli))
	return append(out, payload...)
}

// decodeCheckpoint parses a checkpoint file. Any malformation is an error;
// the caller treats a bad checkpoint as absent (and says so in the report).
func decodeCheckpoint(buf []byte) (seq uint64, cp store.Checkpoint, err error) {
	if len(buf) < len(ckptMagic)+8 || string(buf[:len(ckptMagic)]) != ckptMagic {
		return 0, cp, fmt.Errorf("walstore: checkpoint: bad magic")
	}
	n := binary.LittleEndian.Uint32(buf[len(ckptMagic):])
	crc := binary.LittleEndian.Uint32(buf[len(ckptMagic)+4:])
	payload := buf[len(ckptMagic)+8:]
	if uint32(len(payload)) != n || n > maxRecord {
		return 0, cp, fmt.Errorf("walstore: checkpoint: bad length")
	}
	if crc32.Checksum(payload, castagnoli) != crc {
		return 0, cp, fmt.Errorf("walstore: checkpoint: bad checksum")
	}
	d := wire.NewDecoder(payload)
	seq = d.U64()
	cp.Prot = append([]byte(nil), d.Bytes()...)
	if len(cp.Prot) == 0 {
		cp.Prot = nil
	}
	nl := d.ListLen(1)
	for i := 0; i < nl && d.Err() == nil; i++ {
		cp.Loc = append(cp.Loc, proto.DecodeLocEntry(d))
	}
	nv := d.ListLen(5)
	for i := 0; i < nv && d.Err() == nil; i++ {
		vi := store.VolumeImage{ID: d.U32()}
		vi.Image = append([]byte(nil), d.Bytes()...)
		cp.Volumes = append(cp.Volumes, vi)
	}
	if err := d.Close(); err != nil {
		return 0, store.Checkpoint{}, fmt.Errorf("walstore: checkpoint: %w", err)
	}
	return seq, cp, nil
}
