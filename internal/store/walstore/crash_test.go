package walstore

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"itcfs/internal/prot"
	"itcfs/internal/proto"
	"itcfs/internal/store"
	"itcfs/internal/volume"
)

// crashWorkload drives one store through a fixed operation sequence with
// seeded file contents, syncing after every operation, stopping at the first
// error. states[k] is the volume image after k acknowledged operations
// (states[0] = nil: no volume yet). It returns how many operations were
// fully acknowledged (synced) and how many were at least attempted — the
// recoverable range under a crash.
func crashWorkload(seed int64, fsys store.FS) (states [][]byte, acked, attempted int, err error) {
	states = [][]byte{nil} // a crash during Open itself leaves no acked state
	s, err := Open(fsys)
	if err != nil {
		return states, 0, 0, fmt.Errorf("open: %w", err)
	}
	if _, err := s.Recover(); err != nil {
		return states, 0, 0, fmt.Errorf("recover: %w", err)
	}

	var tick int64
	acl := prot.NewACL()
	acl.Grant("satya", prot.RightsAll)
	v := volume.New(3, "vol", acl, 0, "satya", func() int64 { tick++; return tick })
	v.EnableDirtyTracking()
	v.TakeDirty()

	// Seeded contents: sizes and bytes differ per seed, the op sequence
	// does not (so every seed exposes the same class of crash points).
	rng := seed
	content := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			rng = rng*6364136223846793005 + 1442695040888963407
			b[i] = byte(rng >> 33)
		}
		return b
	}

	var f1, f2, dir proto.FID
	ops := []func() error{
		func() error { return s.BeginVolume(3, v.Serialize()) },
		func() error {
			vn, err := v.Create(v.Root(), "f1", 0o644, "satya")
			if err == nil {
				f1 = vn.Status.FID
			}
			return err
		},
		func() error { _, err := v.WriteData(f1, content(100+int(seed%7)*13)); return err },
		func() error {
			vn, err := v.MakeDir(v.Root(), "d", 0o755, "satya")
			if err == nil {
				dir = vn.Status.FID
			}
			return err
		},
		func() error {
			vn, err := v.Create(dir, "f2", 0o644, "satya")
			if err == nil {
				f2 = vn.Status.FID
			}
			return err
		},
		func() error { _, err := v.WriteData(f2, content(40)); return err },
		func() error { return v.Rename(v.Root(), "f1", dir, "f1r") },
		nil, // checkpoint, handled below
		func() error { _, err := v.WriteData(f2, content(220)); return err },
		func() error { return v.Remove(dir, "f1r") },
	}

	for i, op := range ops {
		attempted++
		if op == nil { // checkpoint: state is unchanged by it
			err = s.Checkpoint(store.Checkpoint{
				Volumes: []store.VolumeImage{{ID: 3, Image: v.Serialize()}},
			})
			states = append(states, states[len(states)-1])
		} else if i == 0 {
			err = op()
			states = append(states, v.Serialize())
		} else {
			if err = op(); err != nil {
				return states, acked, attempted, fmt.Errorf("op %d (in-memory): %w", i, err)
			}
			err = s.Commit(store.CommitOf(v))
			states = append(states, v.Serialize())
		}
		if err != nil {
			return states, acked, attempted, err
		}
		if err = s.Sync(); err != nil {
			return states, acked, attempted, err
		}
		acked++
	}
	return states, acked, attempted, nil
}

// recoveredImage reopens the survivors and returns the recovered volume's
// image (nil if no volume survived).
func recoveredImage(t *testing.T, fsys store.FS) []byte {
	t.Helper()
	s, err := Open(fsys)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	rec, err := s.Recover()
	if err != nil {
		t.Fatalf("recover after crash: %v", err)
	}
	switch len(rec.Volumes) {
	case 0:
		return nil
	case 1:
		return rec.Volumes[0].Serialize()
	default:
		t.Fatalf("recovered %d volumes, want ≤1", len(rec.Volumes))
		return nil
	}
}

// TestWALCrashProperty is the crash-injection suite: for three seeds it
// enumerates every durability event the workload generates, crashes on each,
// reopens what stable storage holds, and checks the recovered volume.
//
// Strict discipline (unsynced bytes wholly lost): recovery yields exactly
// the acknowledged-operation prefix — no acked op lost, no unacked op
// visible. Generous discipline (a torn, bit-flipped tail survives): recovery
// yields some prefix between the acked and the attempted operation count —
// never a torn record's partial effect, never anything newer.
func TestWALCrashProperty(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		// Count the crash points this seed's workload exposes.
		probe := store.NewFaultFS(seed, 0)
		if _, _, _, err := crashWorkload(seed, probe); err != nil {
			t.Fatalf("seed %d: fault-free workload failed: %v", seed, err)
		}
		events := probe.Events()
		if events < 10 {
			t.Fatalf("seed %d: only %d durability events", seed, events)
		}

		for crashAt := 1; crashAt <= events; crashAt++ {
			for _, strict := range []bool{true, false} {
				f := store.NewFaultFS(seed, crashAt)
				f.Strict = strict
				states, acked, attempted, err := crashWorkload(seed, f)
				if !errors.Is(err, store.ErrCrashed) {
					t.Fatalf("seed %d crashAt %d: err = %v", seed, crashAt, err)
				}
				got := recoveredImage(t, f.Survivors())

				if strict {
					if !bytes.Equal(got, states[acked]) {
						t.Fatalf("seed %d crashAt %d strict: recovered state is not the %d-op acked prefix",
							seed, crashAt, acked)
					}
					continue
				}
				ok := false
				for k := acked; k <= attempted && k < len(states); k++ {
					if bytes.Equal(got, states[k]) {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("seed %d crashAt %d generous: recovered state matches no prefix in [%d, %d]",
						seed, crashAt, acked, attempted)
				}
			}
		}
	}
}
