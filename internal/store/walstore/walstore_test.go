package walstore

import (
	"bytes"
	"strings"
	"testing"

	"itcfs/internal/prot"
	"itcfs/internal/proto"
	"itcfs/internal/store"
	"itcfs/internal/volume"
)

func newVol(t *testing.T, id uint32) *volume.Volume {
	t.Helper()
	var tick int64
	acl := prot.NewACL()
	acl.Grant("satya", prot.RightsAll)
	v := volume.New(id, "vol", acl, 0, "satya", func() int64 { tick++; return tick })
	v.EnableDirtyTracking()
	v.TakeDirty()
	return v
}

func open(t *testing.T, fsys store.FS) (*Store, *store.Recovery) {
	t.Helper()
	s, err := Open(fsys)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rec, err := s.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return s, rec
}

// workload journals a volume, two file operations, a location entry and a
// protection mutation, syncing after each, and returns the volume's final
// image.
func workload(t *testing.T, s *Store) []byte {
	t.Helper()
	v := newVol(t, 3)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.BeginVolume(3, v.Serialize()))
	must(s.Sync())

	vn, err := v.Create(v.Root(), "paper.mss", 0o644, "satya")
	must(err)
	must(s.Commit(store.CommitOf(v)))
	must(s.Sync())

	_, err = v.WriteData(vn.Status.FID, []byte("venice precedes vice"))
	must(err)
	must(s.Commit(store.CommitOf(v)))
	must(s.Sync())

	must(s.PutLoc([]proto.LocEntry{{Prefix: "/", Volume: 3, Custodian: "s0"}}, nil))
	must(s.PutProt(prot.Mutation{Kind: prot.MutAddUser, Name: "bovik"}))
	must(s.Sync())
	return v.Serialize()
}

func TestWALPersistAcrossReopen(t *testing.T) {
	fsys := store.NewMemFS()
	s1, rec1 := open(t, fsys)
	if rec1.Report.Replayed != 0 || len(rec1.Volumes) != 0 {
		t.Fatalf("fresh store not empty: %+v", rec1.Report)
	}
	want := workload(t, s1)

	_, rec2 := open(t, fsys)
	if len(rec2.Volumes) != 1 {
		t.Fatalf("recovered %d volumes", len(rec2.Volumes))
	}
	if got := rec2.Volumes[0].Serialize(); !bytes.Equal(got, want) {
		t.Fatal("recovered volume diverged from journalled state")
	}
	if rec2.Report.Replayed != 5 { // begin, commit, commit, loc, prot
		t.Fatalf("Replayed = %d, want 5", rec2.Report.Replayed)
	}
	if rec2.Report.DiscardedRecords != 0 {
		t.Fatalf("clean log discarded %d records", rec2.Report.DiscardedRecords)
	}
	if len(rec2.LocOps) != 1 || len(rec2.ProtMutations) != 1 {
		t.Fatalf("loc=%d prot=%d", len(rec2.LocOps), len(rec2.ProtMutations))
	}
}

func TestWALCheckpointCompacts(t *testing.T) {
	fsys := store.NewMemFS()
	s1, _ := open(t, fsys)
	img := workload(t, s1)
	cp := store.Checkpoint{
		Prot:    []byte("prot-snapshot"),
		Loc:     []proto.LocEntry{{Prefix: "/", Volume: 3, Custodian: "s0"}},
		Volumes: []store.VolumeImage{{ID: 3, Image: img}},
	}
	if err := s1.Checkpoint(cp); err != nil {
		t.Fatal(err)
	}
	wal, ok := fsys.Bytes(walName)
	if !ok || string(wal) != walMagic {
		t.Fatalf("log not compacted: %d bytes", len(wal))
	}

	// Post-checkpoint mutations land in the fresh log and replay on top.
	v2 := newVol(t, 9)
	if err := s1.BeginVolume(9, v2.Serialize()); err != nil {
		t.Fatal(err)
	}
	if err := s1.Sync(); err != nil {
		t.Fatal(err)
	}

	_, rec := open(t, fsys)
	if rec.Report.Replayed != 1 || rec.Report.Skipped != 0 {
		t.Fatalf("report after checkpoint: %+v", rec.Report)
	}
	if string(rec.ProtSnapshot) != "prot-snapshot" {
		t.Fatalf("prot snapshot = %q", rec.ProtSnapshot)
	}
	if len(rec.Volumes) != 2 {
		t.Fatalf("recovered %d volumes, want 2", len(rec.Volumes))
	}
	if rec.Volumes[0].ID() != 3 || rec.Volumes[1].ID() != 9 {
		t.Fatalf("volume order: %d, %d", rec.Volumes[0].ID(), rec.Volumes[1].ID())
	}
	if !bytes.Equal(rec.Volumes[0].Serialize(), img) {
		t.Fatal("checkpointed volume diverged")
	}
}

func TestWALRecoverOnce(t *testing.T) {
	s, _ := open(t, store.NewMemFS())
	if _, err := s.Recover(); err == nil {
		t.Fatal("second Recover must fail")
	}
}

func TestWALTornTailDiscardedAndTruncated(t *testing.T) {
	fsys := store.NewMemFS()
	s1, _ := open(t, fsys)
	want := workload(t, s1)

	// A torn final record: the header promises more bytes than exist.
	wal, _ := fsys.Bytes(walName)
	clean := len(wal)
	torn := append(append([]byte(nil), wal...), 0xEE, 0xFF, 0x10, 0x00)
	fsys.SetFile(walName, torn)

	_, rec := open(t, fsys)
	if rec.Report.DiscardedRecords != 1 || rec.Report.DiscardedBytes != 4 {
		t.Fatalf("discard accounting: %+v", rec.Report)
	}
	if !bytes.Equal(rec.Volumes[0].Serialize(), want) {
		t.Fatal("torn tail corrupted recovered state")
	}
	// Recovery truncates the torn tail, so the next open is clean.
	wal, _ = fsys.Bytes(walName)
	if len(wal) != clean {
		t.Fatalf("tail not truncated: %d bytes, want %d", len(wal), clean)
	}
	_, rec = open(t, fsys)
	if rec.Report.DiscardedRecords != 0 {
		t.Fatalf("second open still discarding: %+v", rec.Report)
	}
}

func TestWALCorruptCheckpointIgnoredWithNote(t *testing.T) {
	fsys := store.NewMemFS()
	s1, _ := open(t, fsys)
	workload(t, s1)
	fsys.SetFile(ckptName, []byte("ITCCKP01 but not really"))

	_, rec := open(t, fsys)
	if len(rec.Report.Notes) == 0 {
		t.Fatalf("no note about the corrupt checkpoint: %+v", rec.Report)
	}
	// The log alone still reconstructs everything.
	if len(rec.Volumes) != 1 || rec.Report.Replayed != 5 {
		t.Fatalf("recovery without checkpoint: %+v", rec.Report)
	}
}

// TestWALSemanticSkipKeepsLaterRecords: a CRC-valid record that is
// semantically unusable — here a commit for a volume the log never began —
// is skipped with a note, not treated as the end of the log. Acked records
// after it for healthy volumes must still replay.
func TestWALSemanticSkipKeepsLaterRecords(t *testing.T) {
	fsys := store.NewMemFS()
	s1, _ := open(t, fsys)
	want := workload(t, s1)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s1.Commit(store.Commit{Vol: 99})) // orphan commit: volume unknown
	must(s1.PutLoc([]proto.LocEntry{{Prefix: "/tail", Volume: 3, Custodian: "s0"}}, nil))
	must(s1.Sync())

	_, rec := open(t, fsys)
	if rec.Report.Replayed != 6 { // workload's 5, plus the trailing loc
		t.Fatalf("Replayed = %d, want 6: %+v", rec.Report.Replayed, rec.Report)
	}
	if rec.Report.DiscardedRecords != 0 || rec.Report.DiscardedBytes != 0 {
		t.Fatalf("semantic rejection truncated the log: %+v", rec.Report)
	}
	if len(rec.LocOps) != 2 {
		t.Fatalf("loc op after the unusable record lost: have %d", len(rec.LocOps))
	}
	if len(rec.Volumes) != 1 || !bytes.Equal(rec.Volumes[0].Serialize(), want) {
		t.Fatal("healthy volume damaged by the skip")
	}
	noted := false
	for _, n := range rec.Report.Notes {
		if strings.Contains(n, "unusable, skipped") {
			noted = true
		}
	}
	if !noted {
		t.Fatalf("no note about the skipped record: %q", rec.Report.Notes)
	}

	// The skipped record stays in the log, so a second recovery reads the
	// same bytes and must say exactly the same thing.
	_, rec2 := open(t, fsys)
	if rec.Report.String() != rec2.Report.String() {
		t.Fatalf("skip not deterministic:\n--- a\n%s--- b\n%s", rec.Report.String(), rec2.Report.String())
	}
}

// TestWALCloseLatchesError: shutdown closes the store while RPC handlers may
// still be mid-mutate; a racing Commit/Sync/Checkpoint must get an error
// back, not dereference the nil log handle.
func TestWALCloseLatchesError(t *testing.T) {
	s, _ := open(t, store.NewMemFS())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(store.Commit{Vol: 3}); err == nil {
		t.Fatal("Commit after Close returned nil")
	}
	if err := s.Sync(); err == nil {
		t.Fatal("Sync after Close returned nil")
	}
	if err := s.Checkpoint(store.Checkpoint{}); err == nil {
		t.Fatal("Checkpoint after Close returned nil")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestSalvageDeterminism runs recovery twice over byte-identical on-disk
// state — including a volume needing repair — and requires byte-identical
// salvage reports, the same bar TestE15Determinism sets for telemetry.
func TestSalvageDeterminism(t *testing.T) {
	image := func() []byte {
		fsys := store.NewMemFS()
		s, _ := open(t, fsys)
		v := newVol(t, 3)
		if _, err := v.Create(v.Root(), "f", 0o644, "satya"); err != nil {
			t.Fatal(err)
		}
		v.CorruptForTest()
		if err := s.BeginVolume(3, v.Serialize()); err != nil {
			t.Fatal(err)
		}
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
		wal, _ := fsys.Bytes(walName)
		return wal
	}()

	run := func() string {
		fsys := store.NewMemFS()
		fsys.SetFile(walName, append([]byte(nil), image...))
		_, rec := open(t, fsys)
		return rec.Report.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("salvage reports differ between identical runs:\n--- a\n%s--- b\n%s", a, b)
	}
	if a == "" {
		t.Fatal("empty salvage report")
	}
}
