// Package walstore is the on-disk store engine: a write-ahead log with
// group-commit fsync and periodic checkpoint/compaction.
//
// Every store operation appends one checksummed, sequence-numbered record
// to wal.log (see record.go for the format). Sync fsyncs the log —
// concurrent committers coalesce onto a single fsync (group commit) — and
// only then may the server acknowledge the operations. Checkpoint writes a
// full snapshot to a separate file with an atomic rename and truncates the
// log, bounding both recovery time and disk use.
//
// Open is recovery: load the checkpoint if one is intact, replay log
// records past its sequence number, stop at the first torn or corrupt
// record and truncate the tail it starts (a CRC-valid record that is merely
// semantically unusable — say a commit for a volume whose checkpoint image
// was dropped — is skipped with a note instead, so it cannot take healthy
// volumes' later records down with it), then run volume salvage over the
// rebuilt state. What fsync is assumed to guarantee, and what the replay
// discipline tolerates, is spelled out in DESIGN.md §9.
//
// The engine never reads a clock and makes no scheduling decisions of its
// own; given the same inputs it produces the same bytes, which the salvage
// determinism test pins.
package walstore

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"itcfs/internal/prot"
	"itcfs/internal/proto"
	"itcfs/internal/store"
	"itcfs/internal/volume"
	"itcfs/internal/wire"
)

// Store is the WAL engine. It implements store.Store.
type Store struct {
	fsys store.FS

	mu   sync.Mutex
	cond *sync.Cond // signals sync completion; paired with mu

	// guarded by mu
	log store.File // append handle on wal.log
	// guarded by mu
	seq uint64 // last sequence number appended
	// guarded by mu
	synced uint64 // last sequence number known durable
	// guarded by mu
	syncing bool // an fsync is in flight (group commit)
	// guarded by mu
	ckptSeq uint64 // sequence number the checkpoint file covers
	// guarded by mu
	err error // first write/sync failure; latched, store is dead after

	recovered *store.Recovery // built once at Open, handed over by Recover
}

// Open mounts (or creates) a store on fsys and runs crash recovery. The
// returned store is ready for commits; Recover hands over the rebuilt
// state.
func Open(fsys store.FS) (*Store, error) {
	s := &Store{fsys: fsys}
	s.cond = sync.NewCond(&s.mu)
	if err := s.recover(); err != nil {
		return nil, err
	}
	f, err := fsys.Open(walName)
	if err != nil {
		return nil, fmt.Errorf("walstore: open log: %w", err)
	}
	s.log = f
	return s, nil
}

// recover rebuilds state from the checkpoint and log, truncating any torn
// tail, and leaves the result in s.recovered. It runs once from Open, before
// the store is shared; it takes mu anyway so the seqno fields have one
// locking story.
func (s *Store) recover() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := &store.Recovery{}
	rep := &rec.Report

	// Checkpoint: a damaged one is treated as absent — the log still holds
	// every record it would have covered only if compaction never ran, so
	// say loudly that history may be gone.
	vols := map[uint32]*volume.Volume{}
	if buf, err := s.fsys.ReadFile(ckptName); err == nil {
		seq, cp, err := decodeCheckpoint(buf)
		if err != nil {
			rep.Notes = append(rep.Notes, fmt.Sprintf("checkpoint unreadable, ignored: %v", err))
		} else {
			s.ckptSeq = seq
			rep.CheckpointSeq = seq
			rec.ProtSnapshot = cp.Prot
			if len(cp.Loc) > 0 {
				rec.LocOps = append(rec.LocOps, store.LocOp{Entries: cp.Loc})
			}
			for _, vi := range cp.Volumes {
				v, err := volume.Deserialize(vi.Image, nil)
				if err != nil {
					rep.Notes = append(rep.Notes, fmt.Sprintf("checkpoint volume %d unreadable, dropped: %v", vi.ID, err))
					continue
				}
				vols[vi.ID] = v
			}
		}
	}

	// Log: replay valid records past the checkpoint; the first invalid one
	// ends the log and the tail it starts is truncated away.
	buf, err := s.fsys.ReadFile(walName)
	switch {
	case err == nil && len(buf) >= len(walMagic) && string(buf[:len(walMagic)]) == walMagic:
		s.replay(buf, vols, rec)
	case err == nil && len(buf) > 0:
		rep.Notes = append(rep.Notes, "log header unreadable, log discarded")
		rep.DiscardedBytes += int64(len(buf))
		if err := s.fsys.Remove(walName); err != nil {
			return fmt.Errorf("walstore: reset log: %w", err)
		}
		//itcvet:allowblocking recovery runs once at startup under mu; no other holder exists yet
		if err := s.writeMagic(); err != nil {
			return err
		}
	default:
		//itcvet:allowblocking recovery runs once at startup under mu; no other holder exists yet
		if err := s.writeMagic(); err != nil {
			return err
		}
	}
	if s.seq < s.ckptSeq {
		s.seq = s.ckptSeq
	}
	s.synced = s.seq
	rep.LastSeq = s.seq

	// Salvage every volume, in volume-ID order so the report is stable.
	for _, id := range sortedIDs(vols) {
		v := vols[id]
		sr := v.Salvage()
		rec.Volumes = append(rec.Volumes, v)
		rep.Volumes = append(rep.Volumes, store.VolumeReport{
			ID: id, Name: v.Name(), Vnodes: v.VnodeCount(), Salvage: sr,
		})
	}
	s.recovered = rec
	return nil
}

// replay applies the log in buf to vols/rec and truncates any invalid tail.
//
//itcvet:holds mu
func (s *Store) replay(buf []byte, vols map[uint32]*volume.Volume, rec *store.Recovery) {
	rep := &rec.Report
	off := len(walMagic)
	valid := off // end of the last fully-valid record
	var prev uint64
	for off < len(buf) {
		seq, kind, body, next, err := readRecord(buf, off)
		if err != nil {
			break
		}
		// Sequence discipline: the first record sets the base; after that
		// every record must follow its predecessor exactly. A repeat, gap
		// or rewind means the tail is not ours.
		if prev != 0 && seq != prev+1 {
			break
		}
		if prev == 0 && seq == 0 {
			break
		}
		prev = seq
		if seq <= s.ckptSeq {
			rep.Skipped++
			valid = next
			off = next
			continue
		}
		if err := applyRecord(kind, body, vols, rec); err != nil {
			if errors.Is(err, errRecordCorrupt) {
				// CRC passed but the body won't decode: format corruption,
				// so nothing past this record can be trusted.
				rep.Notes = append(rep.Notes, fmt.Sprintf(
					"record seq %d (%s) corrupt, log ends here: %v", seq, kindName(kind), err))
				break
			}
			// Decodable but semantically unusable — e.g. a commit for a
			// volume dropped because its checkpoint image was unreadable.
			// Skip just this record: truncating here would discard every
			// later acked record for healthy volumes.
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"record seq %d (%s) unusable, skipped: %v", seq, kindName(kind), err))
			s.seq = seq
			valid = next
			off = next
			continue
		}
		rep.Replayed++
		s.seq = seq
		valid = next
		off = next
	}
	if valid < len(buf) {
		rep.DiscardedRecords++
		rep.DiscardedBytes += int64(len(buf) - valid)
		if err := s.fsys.Truncate(walName, int64(valid)); err != nil {
			rep.Notes = append(rep.Notes, fmt.Sprintf("tail truncation failed: %v", err))
		}
	}
}

// errRecordCorrupt marks a CRC-valid record whose body nonetheless fails to
// decode: format-level corruption, so replay must not trust the log past it.
// Any other applyRecord error is a semantic rejection of just that record.
var errRecordCorrupt = errors.New("body undecodable")

func kindName(kind uint8) string {
	switch kind {
	case kindBegin:
		return "begin"
	case kindDrop:
		return "drop"
	case kindCommit:
		return "commit"
	case kindLoc:
		return "loc"
	case kindProt:
		return "prot"
	}
	return fmt.Sprintf("kind %d", kind)
}

// applyRecord applies one decoded record. errRecordCorrupt (possibly
// wrapped) means the log cannot be trusted past this record; any other
// error means this record alone is unusable.
func applyRecord(kind uint8, body []byte, vols map[uint32]*volume.Volume, rec *store.Recovery) error {
	switch kind {
	case kindBegin:
		d := wire.NewDecoder(body)
		id := d.U32()
		image := d.Bytes()
		if d.Close() != nil {
			return errRecordCorrupt
		}
		v, err := volume.Deserialize(image, nil)
		if err != nil {
			return fmt.Errorf("volume %d image unreadable: %v", id, err)
		}
		if v.ID() != id {
			return fmt.Errorf("volume image declares id %d, record says %d", v.ID(), id)
		}
		vols[id] = v
	case kindDrop:
		d := wire.NewDecoder(body)
		id := d.U32()
		if d.Close() != nil {
			return errRecordCorrupt
		}
		delete(vols, id)
	case kindCommit:
		d := wire.NewDecoder(body)
		c := store.DecodeCommit(d)
		if d.Close() != nil {
			return errRecordCorrupt
		}
		v, ok := vols[c.Vol]
		if !ok {
			return fmt.Errorf("commit for unknown volume %d", c.Vol)
		}
		if err := store.ApplyCommit(v, c); err != nil {
			return fmt.Errorf("commit to volume %d: %v", c.Vol, err)
		}
	case kindLoc:
		d := wire.NewDecoder(body)
		a := proto.DecodeLocInstallArgs(d)
		if d.Close() != nil {
			return errRecordCorrupt
		}
		rec.LocOps = append(rec.LocOps, store.LocOp{Entries: a.Entries, Remove: a.Remove})
	case kindProt:
		d := wire.NewDecoder(body)
		m := prot.DecodeMutation(d)
		if d.Close() != nil {
			return errRecordCorrupt
		}
		rec.ProtMutations = append(rec.ProtMutations, m)
	default:
		return fmt.Errorf("unknown record kind %d: %w", kind, errRecordCorrupt)
	}
	return nil
}

func (s *Store) writeMagic() error {
	if err := s.fsys.WriteFileAtomic(walName, []byte(walMagic)); err != nil {
		return fmt.Errorf("walstore: init log: %w", err)
	}
	return nil
}

// append frames and appends one record, assigning it the next seqno.
func (s *Store) append(kind uint8, body []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	rec := frameRecord(s.seq+1, kind, body)
	if err := s.log.Append(rec); err != nil {
		s.err = fmt.Errorf("walstore: append: %w", err)
		s.cond.Broadcast()
		return s.err
	}
	s.seq++
	return nil
}

// BeginVolume records a volume's existence with its full initial image.
func (s *Store) BeginVolume(id uint32, image []byte) error {
	return s.append(kindBegin, encodeVolumeBody(id, image))
}

// DropVolume forgets a volume.
func (s *Store) DropVolume(id uint32) error {
	var e wire.Encoder
	e.U32(id)
	return s.append(kindDrop, e.Buf())
}

// Commit records the durable effect of one logical operation.
func (s *Store) Commit(c store.Commit) error {
	var e wire.Encoder
	c.Encode(&e)
	return s.append(kindCommit, e.Buf())
}

// PutLoc records a location-database change.
func (s *Store) PutLoc(entries []proto.LocEntry, remove []string) error {
	var e wire.Encoder
	proto.LocInstallArgs{Entries: entries, Remove: remove}.Encode(&e)
	return s.append(kindLoc, e.Buf())
}

// PutProt records a protection-database mutation.
func (s *Store) PutProt(m prot.Mutation) error {
	var e wire.Encoder
	m.Encode(&e)
	return s.append(kindProt, e.Buf())
}

// Sync makes every appended record durable before returning. Concurrent
// callers coalesce: whoever finds no fsync in flight issues one, everyone
// else waits for a completion that covers their records.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	target := s.seq
	for {
		if s.err != nil {
			return s.err
		}
		if s.synced >= target {
			return nil
		}
		if s.syncing {
			s.cond.Wait()
			continue
		}
		s.syncing = true
		covers := s.seq // appended before the fsync starts, so covered by it
		log := s.log    // capture under mu: Close may nil the field
		s.mu.Unlock()
		err := log.Sync()
		s.mu.Lock()
		s.syncing = false
		if err != nil {
			if s.err == nil {
				s.err = fmt.Errorf("walstore: fsync: %w", err)
			}
		} else if s.synced < covers {
			s.synced = covers
		}
		s.cond.Broadcast()
	}
}

// Recover hands over the state rebuilt at Open. Ownership of the volumes
// transfers to the caller; Recover must be called at most once.
func (s *Store) Recover() (*store.Recovery, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.recovered == nil {
		return nil, errors.New("walstore: Recover called twice")
	}
	rec := s.recovered
	s.recovered = nil
	return rec, nil
}

// Checkpoint atomically replaces all history with a full snapshot: write
// the snapshot file (atomic rename), then truncate the log. A crash between
// the two is safe — replay skips records at or below the checkpoint seqno.
func (s *Store) Checkpoint(cp store.Checkpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	//itcvet:allowblocking checkpoint must exclude appends for the snapshot+truncate pair to be a consistent cut
	if err := s.fsys.WriteFileAtomic(ckptName, encodeCheckpoint(s.seq, cp)); err != nil {
		s.err = fmt.Errorf("walstore: write checkpoint: %w", err)
		s.cond.Broadcast()
		return s.err
	}
	if err := s.fsys.Truncate(walName, int64(len(walMagic))); err != nil {
		s.err = fmt.Errorf("walstore: truncate log: %w", err)
		s.cond.Broadcast()
		return s.err
	}
	s.ckptSeq = s.seq
	s.synced = s.seq
	return nil
}

// Close releases the log handle. It does not imply Sync. Closing latches
// the store's error so a racing Commit or Sync (an RPC handler still
// mid-mutate during shutdown) gets an error back instead of dereferencing
// the nil log handle.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	err := s.log.Close()
	s.log = nil
	if s.err == nil {
		s.err = errors.New("walstore: closed")
	}
	s.cond.Broadcast()
	return err
}

func sortedIDs(m map[uint32]*volume.Volume) []uint32 {
	ids := make([]uint32, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
