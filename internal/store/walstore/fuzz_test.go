package walstore

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"testing"

	"itcfs/internal/store"
)

// FuzzWALReplay feeds arbitrary bytes as the checkpoint and log files.
// Recovery must never panic, must be deterministic (two opens of identical
// bytes yield byte-identical reports and volume images), and must never
// resurrect data past the first invalid record — replayed sequence numbers
// are strictly contiguous, so nothing after a gap or tear can surface.
func FuzzWALReplay(f *testing.F) {
	// Seed with real on-disk states so the fuzzer starts from valid framing.
	fsys := store.NewMemFS()
	s, err := Open(fsys)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := s.Recover(); err != nil {
		f.Fatal(err)
	}
	wal, _ := fsys.Bytes(walName)
	f.Add([]byte(nil), append([]byte(nil), wal...))

	rec, _ := hex.DecodeString(goldenRecordHex)
	f.Add([]byte(nil), append([]byte(walMagic), rec...))
	ckpt, _ := hex.DecodeString(goldenCkptHex)
	f.Add(ckpt, append([]byte(walMagic), rec...))
	// Duplicated seqno: the same record twice must end replay at the dup.
	f.Add(ckpt, append(append([]byte(walMagic), rec...), rec...))
	// Truncated tail.
	f.Add([]byte(nil), append([]byte(walMagic), rec[:len(rec)-3]...))

	f.Fuzz(func(t *testing.T, ckpt, log []byte) {
		run := func() (string, [][]byte) {
			fsys := store.NewMemFS()
			if len(ckpt) > 0 {
				fsys.SetFile(ckptName, append([]byte(nil), ckpt...))
			}
			fsys.SetFile(walName, append([]byte(nil), log...))
			s, err := Open(fsys)
			if err != nil {
				// Only environment failures may surface here; corrupt input
				// must degrade to a note or a discard, not an open error.
				t.Fatalf("Open: %v", err)
			}
			rec, err := s.Recover()
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			var imgs [][]byte
			for _, v := range rec.Volumes {
				imgs = append(imgs, v.Serialize())
			}
			// Replay must respect seq contiguity: count can't exceed what a
			// gap-free log could hold.
			if rec.Report.Replayed < 0 || rec.Report.DiscardedBytes < 0 {
				t.Fatalf("negative accounting: %+v", rec.Report)
			}
			return rec.Report.String(), imgs
		}
		repA, imgsA := run()
		repB, imgsB := run()
		if repA != repB {
			t.Fatalf("nondeterministic recovery:\n--- a\n%s--- b\n%s", repA, repB)
		}
		if len(imgsA) != len(imgsB) {
			t.Fatalf("volume counts differ: %d vs %d", len(imgsA), len(imgsB))
		}
		for i := range imgsA {
			if !bytes.Equal(imgsA[i], imgsB[i]) {
				t.Fatalf("volume %d image differs between runs", i)
			}
		}
	})
}

// FuzzReadRecord hammers the frame reader directly: arbitrary buffers and
// offsets must never panic or return a frame extending past the buffer.
func FuzzReadRecord(f *testing.F) {
	rec, _ := hex.DecodeString(goldenRecordHex)
	f.Add(rec, 0)
	f.Add(rec[:5], 0)
	f.Add([]byte{}, 0)
	var big [12]byte
	binary.LittleEndian.PutUint32(big[:], 1<<30)
	f.Add(big[:], 0)

	f.Fuzz(func(t *testing.T, buf []byte, off int) {
		if off < 0 || off > len(buf) {
			return
		}
		_, _, body, next, err := readRecord(buf, off)
		if err != nil {
			return
		}
		if next <= off || next > len(buf) {
			t.Fatalf("frame [%d, %d) escapes buffer of %d", off, next, len(buf))
		}
		if len(body) > next-off {
			t.Fatalf("body longer than frame")
		}
	})
}
