package memstore

import (
	"bytes"
	"testing"

	"itcfs/internal/prot"
	"itcfs/internal/proto"
	"itcfs/internal/store"
	"itcfs/internal/volume"
)

func newVol(id uint32) *volume.Volume {
	var tick int64
	acl := prot.NewACL()
	acl.Grant("satya", prot.RightsAll)
	v := volume.New(id, "vol", acl, 0, "satya", func() int64 { tick++; return tick })
	v.EnableDirtyTracking()
	v.TakeDirty()
	return v
}

func TestMemstoreRoundTrip(t *testing.T) {
	s := New()
	v := newVol(3)
	if err := s.BeginVolume(v.ID(), v.Serialize()); err != nil {
		t.Fatal(err)
	}

	vn, err := v.Create(v.Root(), "f", 0o644, "satya")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.WriteData(vn.Status.FID, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(store.CommitOf(v)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutProt(prot.Mutation{Kind: prot.MutAddUser, Name: "bovik"}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutLoc([]proto.LocEntry{{Prefix: "/", Volume: 3, Custodian: "s0"}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}

	rec, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Volumes) != 1 || rec.Volumes[0].ID() != 3 {
		t.Fatalf("recovered %d volumes", len(rec.Volumes))
	}
	if !bytes.Equal(rec.Volumes[0].Serialize(), v.Serialize()) {
		t.Fatal("recovered volume diverged")
	}
	if len(rec.ProtMutations) != 1 || rec.ProtMutations[0].Name != "bovik" {
		t.Fatalf("mutations = %+v", rec.ProtMutations)
	}
	if len(rec.LocOps) != 1 || len(rec.LocOps[0].Entries) != 1 {
		t.Fatalf("loc ops = %+v", rec.LocOps)
	}
	if len(rec.Report.Volumes) != 1 || rec.Report.Volumes[0].ID != 3 {
		t.Fatalf("report = %+v", rec.Report)
	}

	// Recovered volumes are copies: mutating one must not leak into the store.
	if _, err := rec.Volumes[0].Create(rec.Volumes[0].Root(), "g", 0o644, "satya"); err != nil {
		t.Fatal(err)
	}
	rec2, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec2.Volumes[0].Serialize(), v.Serialize()) {
		t.Fatal("store state aliased by recovered volume")
	}
}

func TestMemstoreCommitUnknownVolume(t *testing.T) {
	s := New()
	if err := s.Commit(store.Commit{Vol: 99}); err == nil {
		t.Fatal("want unknown-volume error")
	}
}

func TestMemstoreDropAndCheckpoint(t *testing.T) {
	s := New()
	v := newVol(1)
	if err := s.BeginVolume(1, v.Serialize()); err != nil {
		t.Fatal(err)
	}
	if err := s.DropVolume(1); err != nil {
		t.Fatal(err)
	}
	rec, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Volumes) != 0 {
		t.Fatalf("dropped volume recovered: %d", len(rec.Volumes))
	}

	w := newVol(2)
	cp := store.Checkpoint{
		Prot:    []byte{},
		Loc:     []proto.LocEntry{{Prefix: "/", Volume: 2, Custodian: "s0"}},
		Volumes: []store.VolumeImage{{ID: 2, Image: w.Serialize()}},
	}
	if err := s.Checkpoint(cp); err != nil {
		t.Fatal(err)
	}
	rec, err = s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Volumes) != 1 || rec.Volumes[0].ID() != 2 {
		t.Fatalf("after checkpoint: %d volumes", len(rec.Volumes))
	}
	if len(rec.LocOps) != 1 {
		t.Fatalf("after checkpoint: loc ops = %+v", rec.LocOps)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
