// Package memstore is the in-memory store engine. It keeps shadow volumes
// built by replaying every commit — the same replay path walstore uses — so
// the commit protocol is exercised even when nothing touches disk. The
// deterministic simulator attaches it to Vice servers: Sync is a no-op,
// nothing reads a clock, and a simulated server "restart" recovers from the
// shadows exactly as a real one recovers from the log.
package memstore

import (
	"fmt"
	"sort"
	"sync"

	"itcfs/internal/prot"
	"itcfs/internal/proto"
	"itcfs/internal/store"
	"itcfs/internal/volume"
)

// Store is an in-memory store.Store.
type Store struct {
	mu sync.Mutex
	// guarded by mu
	vols map[uint32]*volume.Volume // shadow volumes, replay targets
	// guarded by mu
	protSnap []byte
	// guarded by mu
	protMuts []prot.Mutation
	// guarded by mu
	locOps []store.LocOp
}

// New returns an empty in-memory store.
func New() *Store {
	return &Store{vols: make(map[uint32]*volume.Volume)}
}

// BeginVolume records a volume's existence with its full initial image.
func (s *Store) BeginVolume(id uint32, image []byte) error {
	v, err := volume.Deserialize(image, nil)
	if err != nil {
		return fmt.Errorf("memstore: begin volume %d: %w", id, err)
	}
	if v.ID() != id {
		return fmt.Errorf("memstore: image is volume %d, not %d", v.ID(), id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vols[id] = v
	return nil
}

// DropVolume forgets a volume.
func (s *Store) DropVolume(id uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.vols, id)
	return nil
}

// Commit replays the commit onto the shadow volume.
func (s *Store) Commit(c store.Commit) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.vols[c.Vol]
	if !ok {
		return fmt.Errorf("memstore: commit for unknown volume %d", c.Vol)
	}
	return store.ApplyCommit(v, c)
}

// PutLoc records a location-database change.
func (s *Store) PutLoc(entries []proto.LocEntry, remove []string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.locOps = append(s.locOps, store.LocOp{
		Entries: append([]proto.LocEntry(nil), entries...),
		Remove:  append([]string(nil), remove...),
	})
	return nil
}

// PutProt records a protection-database mutation.
func (s *Store) PutProt(m prot.Mutation) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.protMuts = append(s.protMuts, m)
	return nil
}

// Sync is a no-op: memory is as durable as this engine gets.
func (s *Store) Sync() error { return nil }

// Recover returns deep copies of the shadow state. Volumes round-trip
// through Serialize so the caller's mutations cannot reach the shadows.
func (s *Store) Recover() (*store.Recovery, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := &store.Recovery{
		ProtSnapshot:  append([]byte(nil), s.protSnap...),
		ProtMutations: append([]prot.Mutation(nil), s.protMuts...),
		LocOps:        append([]store.LocOp(nil), s.locOps...),
	}
	if s.protSnap == nil {
		rec.ProtSnapshot = nil
	}
	for _, id := range sortedIDs(s.vols) {
		v, err := volume.Deserialize(s.vols[id].Serialize(), nil)
		if err != nil {
			return nil, fmt.Errorf("memstore: recover volume %d: %w", id, err)
		}
		sr := v.Salvage()
		rec.Volumes = append(rec.Volumes, v)
		rec.Report.Volumes = append(rec.Report.Volumes, store.VolumeReport{
			ID: id, Name: v.Name(), Vnodes: v.VnodeCount(), Salvage: sr,
		})
	}
	return rec, nil
}

// Checkpoint replaces the shadow state with the snapshot.
func (s *Store) Checkpoint(cp store.Checkpoint) error {
	vols := make(map[uint32]*volume.Volume, len(cp.Volumes))
	for _, vi := range cp.Volumes {
		v, err := volume.Deserialize(vi.Image, nil)
		if err != nil {
			return fmt.Errorf("memstore: checkpoint volume %d: %w", vi.ID, err)
		}
		vols[vi.ID] = v
	}
	var locOps []store.LocOp
	if len(cp.Loc) > 0 {
		locOps = []store.LocOp{{Entries: append([]proto.LocEntry(nil), cp.Loc...)}}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vols = vols
	s.protSnap = append([]byte(nil), cp.Prot...)
	s.protMuts = nil
	s.locOps = locOps
	return nil
}

// Close releases nothing.
func (s *Store) Close() error { return nil }

func sortedIDs(m map[uint32]*volume.Volume) []uint32 {
	ids := make([]uint32, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
