package venus

import (
	"sort"

	"itcfs/internal/proto"
	"itcfs/internal/rpc"
	"itcfs/internal/sim"
	"itcfs/internal/trace"
)

// Batched revalidation (the client half of BulkTestValid): instead of one
// TestValid RPC per cached entry, a sweep asks each custodian about up to
// RevalidateBatch entries in one round trip. Sweeps run when a dead
// connection is dropped (the server may have restarted and lost its
// callback table) and when the workload asks for a periodic TTL sweep.

// DefaultRevalidateBatch is the sweep batch size when Config leaves
// RevalidateBatch zero.
const DefaultRevalidateBatch = 64

// revalCandidate is one cached entry a sweep must check, snapshotted
// outside the lock.
type revalCandidate struct {
	fid     proto.FID
	version uint64
	path    string
}

// Revalidate sweeps the cache, asking each custodian — in bulk — whether
// the clean, promise-holding entries are still current. force checks every
// such entry; otherwise only those whose promise has outlived CallbackTTL.
// Valid answers refresh the promise timestamp (the server re-promised in
// the same call); anything else invalidates the entry, sending the next
// open through the normal fetch path, which knows how to chase redirects.
// It returns how many entries were checked and how many proved stale; err
// reports the last custodian that could not be reached (entries it covered
// stay unrefreshed and fall back to per-open validation).
func (v *Venus) Revalidate(p *sim.Proc, force bool) (checked, stale int, err error) {
	sp := v.cfg.Tracer.Begin(p, trace.SpanVenusRevalidate, v.cfg.Machine)
	defer sp.End()
	now := v.now(p)
	v.mu.Lock()
	cands := make([]revalCandidate, 0, len(v.byFID))
	for fid, e := range v.byFID {
		if e.cacheFile == "" || e.dirty || !e.valid {
			continue
		}
		if !force && v.freshLocked(e, now) {
			continue
		}
		cands = append(cands, revalCandidate{fid: fid, version: e.status.Version, path: e.path})
	}
	v.mu.Unlock()
	sort.Slice(cands, func(i, j int) bool { return fidLess(cands[i].fid, cands[j].fid) })
	if len(cands) == 0 {
		return 0, 0, nil
	}

	// Group by preferred server, keeping servers in the order their first
	// entry appears in the FID-sorted candidate list — deterministic. Each
	// group remembers its full fallback order: entries on a replicated
	// read-only volume may be validated against any replica (replicas of a
	// release are immutable and share the clone's versions), so when the
	// preferred server is unreachable the sweep fails over instead of
	// leaving the whole group unrefreshed.
	byServer := make(map[string][]revalCandidate)
	fallbacks := make(map[string][]string)
	var order []string
	for _, c := range cands {
		cr, lerr := v.locateVolume(p, c.fid.Volume, c.path)
		if lerr != nil {
			err = lerr
			continue
		}
		servers := v.serverOrder(cr, true)
		server := servers[0]
		if _, ok := byServer[server]; !ok {
			order = append(order, server)
			fallbacks[server] = servers
		}
		byServer[server] = append(byServer[server], c)
	}

	batch := v.cfg.RevalidateBatch
	if batch <= 0 {
		batch = DefaultRevalidateBatch
	}
	if batch > proto.MaxBulkItems {
		batch = proto.MaxBulkItems
	}
	for _, server := range order {
		items := byServer[server]
		for len(items) > 0 {
			chunk := items
			if len(chunk) > batch {
				chunk = chunk[:batch]
			}
			items = items[len(chunk):]
			n, st, cerr := v.revalidateChunk(p, fallbacks[server], chunk)
			checked += n
			stale += st
			if cerr != nil {
				err = cerr
			}
		}
	}
	v.noteSweep(force, checked, stale, err)
	return checked, stale, err
}

// revalidateChunk checks one custodian's batch against the first reachable
// server in servers. A single-entry chunk uses the legacy TestValid call —
// so RevalidateBatch=1 reproduces the unbatched protocol exactly, which is
// what E14's ablation side measures.
func (v *Venus) revalidateChunk(p *sim.Proc, servers []string, chunk []revalCandidate) (checked, stale int, err error) {
	v.mu.Lock()
	v.stats.Revalidated += int64(len(chunk))
	v.mu.Unlock()
	if len(chunk) == 1 {
		c := chunk[0]
		ok, cur, verr := v.testValid(p, proto.Ref{FID: c.fid}, c.version)
		if verr != nil {
			return 0, 0, verr
		}
		return 1, v.applyRevalidation(p, []revalCandidate{c},
			[]proto.TestValidReply{{Valid: ok, Version: cur}}), nil
	}
	args := proto.BulkTestValidArgs{Items: make([]proto.TestValidArgs, 0, len(chunk))}
	for _, c := range chunk {
		args.Items = append(args.Items, proto.TestValidArgs{Ref: proto.Ref{FID: c.fid}, Version: c.version})
	}
	reply, err := v.bulkTestValid(p, servers, args)
	if err != nil {
		return 0, 0, err
	}
	if len(reply.Items) != len(chunk) {
		return 0, 0, proto.ErrInternal
	}
	return len(chunk), v.applyRevalidation(p, chunk, reply.Items), nil
}

// applyRevalidation folds a batch's verdicts back into the cache. An entry
// that changed underneath the sweep (refetched, rewritten, or broken by a
// callback that raced the RPC) is left alone: the verdict describes a copy
// we no longer hold.
func (v *Venus) applyRevalidation(p *sim.Proc, chunk []revalCandidate, verdicts []proto.TestValidReply) (stale int) {
	now := v.now(p)
	v.mu.Lock()
	defer v.mu.Unlock()
	for i, c := range chunk {
		e := v.byFID[c.fid]
		if e == nil || e.dirty || !e.valid || e.status.Version != c.version {
			continue
		}
		if verdicts[i].Valid {
			e.fetchedAt = now
		} else {
			e.valid = false
			stale++
		}
	}
	return stale
}

// bulkTestValid performs one BulkTestValid RPC against the first reachable
// server in servers, redialing a dead connection like callAt does and
// failing over down the replica order when a server stays unreachable. It
// deliberately skips wrong-server redirect handling: a custodian that no
// longer hosts an item answers Valid=false for it, and the next open's
// fetch chases the move. A read-only replica never breaks callbacks — its
// volumes are immutable — so a Valid answer from any replica is as good as
// the custodian's.
func (v *Venus) bulkTestValid(p *sim.Proc, servers []string, args proto.BulkTestValidArgs) (proto.BulkTestValidReply, error) {
	sp := v.cfg.Tracer.Begin(p, trace.SpanVenusValidateBulk, v.cfg.Machine)
	defer sp.End()
	v.mu.Lock()
	v.stats.BulkValidations++
	v.mu.Unlock()
	req := rpc.Request{
		Op:   rpc.Op(proto.OpBulkTestValid),
		Body: proto.Marshal(args),
	}
	redials, si := 0, 0
	server := servers[si]
	failNext := func() bool {
		if si+1 >= len(servers) {
			return false
		}
		if p != nil {
			p.Sleep(failoverBackoff << uint(si))
		}
		si++
		server = servers[si]
		redials = 0
		v.mu.Lock()
		v.stats.Failovers++
		v.mu.Unlock()
		v.mFailover.Inc()
		return true
	}
	for {
		c, err := v.conn(p, server)
		if err != nil {
			if isRedialable(err) && redials < v.cfg.ReconnectRetries {
				redials++
				continue
			}
			if isTransportErr(err) && failNext() {
				continue
			}
			return proto.BulkTestValidReply{}, err
		}
		resp, err := c.Call(p, req)
		if err != nil {
			if isTransportErr(err) && redials < v.cfg.ReconnectRetries {
				v.dropConn(server, c)
				redials++
				continue
			}
			if isTransportErr(err) {
				v.dropConn(server, c)
				if failNext() {
					continue
				}
			}
			return proto.BulkTestValidReply{}, err
		}
		if !resp.OK() {
			return proto.BulkTestValidReply{}, proto.CodeToErr(resp.Code, string(resp.Body))
		}
		return proto.Unmarshal(resp.Body, proto.DecodeBulkTestValidReply)
	}
}

// fidLess orders FIDs by (volume, vnode, uniquifier).
func fidLess(a, b proto.FID) bool {
	if a.Volume != b.Volume {
		return a.Volume < b.Volume
	}
	if a.Vnode != b.Vnode {
		return a.Vnode < b.Vnode
	}
	return a.Uniq < b.Uniq
}
