package venus

import (
	"errors"
	"testing"

	"itcfs/internal/proto"
	"itcfs/internal/vice"
)

func TestSymlinkAcrossVolumes(t *testing.T) {
	// A symlink in one volume pointing into another: resolution restarts
	// through the location machinery, exactly like the server-side walk.
	for _, mode := range []vice.Mode{vice.Prototype, vice.Revised} {
		t.Run(mode.String(), func(t *testing.T) {
			c := newTestCell(t, mode, "s0")
			c.mkVolume("u.satya", "/usr/satya", "satya", 0)
			c.mkVolume("proj", "/proj", "satya", 0)
			v := c.newVenus("s0", "satya", nil)
			writeFile(t, v, "/proj/plan.txt", "the real plan")
			if err := v.Symlink(nil, "/proj/plan.txt", "/usr/satya/plan"); err != nil {
				t.Fatal(err)
			}
			if got := readFile(t, v, "/usr/satya/plan"); got != "the real plan" {
				t.Fatalf("cross-volume symlink read %q", got)
			}
		})
	}
}

func TestRenameAcrossVolumesRefused(t *testing.T) {
	c := newTestCell(t, vice.Prototype, "s0")
	c.mkVolume("a", "/a", "satya", 0)
	c.mkVolume("b", "/b", "satya", 0)
	v := c.newVenus("s0", "satya", nil)
	writeFile(t, v, "/a/f", "x")
	if err := v.Rename(nil, "/a/f", "/b/f"); !errors.Is(err, proto.ErrBadRequest) {
		t.Fatalf("cross-volume rename: %v, want ErrBadRequest", err)
	}
}

func TestHardLinkAcrossVolumesRefused(t *testing.T) {
	c := newTestCell(t, vice.Prototype, "s0")
	c.mkVolume("a", "/a", "satya", 0)
	c.mkVolume("b", "/b", "satya", 0)
	v := c.newVenus("s0", "satya", nil)
	writeFile(t, v, "/a/f", "x")
	if err := v.Link(nil, "/a/f", "/b/g"); !errors.Is(err, proto.ErrBadRequest) {
		t.Fatalf("cross-volume link: %v, want ErrBadRequest", err)
	}
}

func TestHardLinkWithinVolume(t *testing.T) {
	c := newTestCell(t, vice.Revised, "s0")
	c.mkVolume("u", "/u", "satya", 0)
	v := c.newVenus("s0", "satya", nil)
	writeFile(t, v, "/u/orig", "linked data")
	if err := v.Link(nil, "/u/orig", "/u/alias"); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, v, "/u/alias"); got != "linked data" {
		t.Fatalf("hard link read %q", got)
	}
	// Removing the original keeps the alias alive.
	if err := v.Remove(nil, "/u/orig"); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, v, "/u/alias"); got != "linked data" {
		t.Fatalf("after unlink: %q", got)
	}
}

func TestTwoHandlesSameFile(t *testing.T) {
	// Two handles on one workstation share the cached copy; writes through
	// one are visible to the other immediately (same machine), and the
	// store happens when the dirty handle closes.
	c := newTestCell(t, vice.Prototype, "s0")
	c.mkVolume("u", "/u", "satya", 0)
	v := c.newVenus("s0", "satya", nil)
	writeFile(t, v, "/u/f", "0123456789")

	reader, err := v.Open(nil, "/u/f", FlagRead)
	if err != nil {
		t.Fatal(err)
	}
	writer, err := v.Open(nil, "/u/f", FlagRead|FlagWrite)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writer.WriteAt([]byte("XY"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	n, _ := reader.ReadAt(buf, 0)
	if string(buf[:n]) != "XY23" {
		t.Fatalf("reader sees %q", buf[:n])
	}
	if err := writer.Close(nil); err != nil {
		t.Fatal(err)
	}
	if err := reader.Close(nil); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, v, "/u/f"); got != "XY23456789" {
		t.Fatalf("stored %q", got)
	}
}

func TestOpenPinnedEntrySurvivesChurn(t *testing.T) {
	// An open handle pins its cache entry against eviction even in a tiny
	// cache.
	c := newTestCell(t, vice.Prototype, "s0")
	c.mkVolume("u", "/u", "satya", 0)
	v := c.newVenus("s0", "satya", func(cfg *Config) { cfg.MaxFiles = 2 })
	writeFile(t, v, "/u/pinned", "pinned data")
	h, err := v.Open(nil, "/u/pinned", FlagRead)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		writeFile(t, v, "/u/churn"+string(rune('a'+i)), "x")
	}
	buf := make([]byte, 32)
	n, err := h.ReadAt(buf, 0)
	if err != nil || string(buf[:n]) != "pinned data" {
		t.Fatalf("pinned read: %q %v", buf[:n], err)
	}
	h.Close(nil)
}

func TestReadDirOfPlainFileFails(t *testing.T) {
	for _, mode := range []vice.Mode{vice.Prototype, vice.Revised} {
		t.Run(mode.String(), func(t *testing.T) {
			c := newTestCell(t, mode, "s0")
			c.mkVolume("u", "/u", "satya", 0)
			v := c.newVenus("s0", "satya", nil)
			writeFile(t, v, "/u/f", "not a dir")
			if _, err := v.ReadDir(nil, "/u/f"); err == nil {
				t.Fatal("ReadDir of a plain file succeeded")
			}
		})
	}
}

func TestRemoveNonEmptyDirRefused(t *testing.T) {
	c := newTestCell(t, vice.Revised, "s0")
	c.mkVolume("u", "/u", "satya", 0)
	v := c.newVenus("s0", "satya", nil)
	if err := v.Mkdir(nil, "/u/d", 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, v, "/u/d/f", "x")
	if err := v.RemoveDir(nil, "/u/d"); !errors.Is(err, proto.ErrNotEmpty) {
		t.Fatalf("err = %v, want ErrNotEmpty", err)
	}
}

func TestDeepPathsBothModes(t *testing.T) {
	for _, mode := range []vice.Mode{vice.Prototype, vice.Revised} {
		t.Run(mode.String(), func(t *testing.T) {
			c := newTestCell(t, mode, "s0")
			c.mkVolume("u", "/u", "satya", 0)
			v := c.newVenus("s0", "satya", nil)
			path := "/u"
			for i := 0; i < 8; i++ {
				path += "/d"
				if err := v.Mkdir(nil, path, 0o755); err != nil {
					t.Fatal(err)
				}
			}
			writeFile(t, v, path+"/leaf", "deep")
			if got := readFile(t, v, path+"/leaf"); got != "deep" {
				t.Fatalf("deep read %q", got)
			}
		})
	}
}
