// Package venus implements Venus, the user-level cache manager of §3.5.1:
// it handles management of the workstation's whole-file cache, communication
// with Vice, and the emulation of native file-system primitives for Vice
// files. Application programs never talk to Vice; they operate on cached
// copies through handles Venus hands out, and Venus contacts custodians
// only on opens, closes and directory operations.
//
// Venus supports both of the paper's implementations:
//
//   - Prototype mode: whole pathnames go to the server, every open
//     revalidates the cached copy (check-on-open), and the cache holds at
//     most MaxFiles entries (count-limited LRU — the paper's "negative
//     experience" the revised space-limited algorithm fixes).
//   - Revised mode: Venus translates pathnames to FIDs itself by caching
//     and traversing directories, cached entries stay valid until the
//     server breaks a callback, and the cache is limited by bytes.
package venus

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"time"

	"itcfs/internal/proto"
	"itcfs/internal/replica"
	"itcfs/internal/rpc"
	"itcfs/internal/secure"
	"itcfs/internal/sim"
	"itcfs/internal/trace"
	"itcfs/internal/unixfs"
	"itcfs/internal/vice"
)

// Conn abstracts an authenticated connection to one server.
type Conn interface {
	Call(p *sim.Proc, req rpc.Request) (rpc.Response, error)
}

// Connector dials the named server, authenticating as the current user.
type Connector func(p *sim.Proc, server string) (Conn, error)

// Stats counts Venus activity; the evaluation harness reads these for the
// cache-hit-ratio and call-mix experiments.
type Stats struct {
	Opens           int64
	Hits            int64 // opens served without fetching data
	Misses          int64 // opens that fetched the file
	Validations     int64 // TestValid RPCs (check-on-open)
	BulkValidations int64 // BulkTestValid RPCs (batched revalidation sweeps)
	Revalidated     int64 // cached entries checked by revalidation sweeps
	Fetches         int64 // Fetch RPCs (data)
	Stores          int64 // Store RPCs
	StatRPCs        int64 // FetchStatus RPCs
	OtherRPCs       int64 // directory ops, locks, custodian queries
	CallbackBreaks  int64 // invalidations received
	Evictions       int64
	BytesFetched    int64
	BytesStored     int64
	DegradedReads   int64 // reads served from cache while the server was unreachable
	Reconnects      int64 // dead connections dropped for redial after transport failure
	Failovers       int64 // calls moved to a fallback replica after a server stayed unreachable
}

// HitRatio returns hits over opens (0 when no opens).
func (s Stats) HitRatio() float64 {
	if s.Opens == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Opens)
}

// Config assembles a Venus instance.
type Config struct {
	Mode       vice.Mode
	Machine    string // workstation name, for diagnostics
	Local      *unixfs.FS
	CacheDir   string // directory in Local holding cached copies
	MaxFiles   int    // prototype cache limit (entry count)
	MaxBytes   int64  // revised cache limit (bytes)
	HomeServer string // this cluster's server, asked first for locations
	Connect    Connector
	// CallbackTTL bounds how long a revised-mode client trusts a callback
	// promise without revalidating (0 = forever, the paper's design). A
	// finite TTL bounds staleness when a server crash wipes its callback
	// table or a partition swallows break messages: once the TTL expires,
	// the next open revalidates with TestValid, which also hands the server
	// a fresh promise — rebuilding its callback table after a restart.
	CallbackTTL time.Duration
	// ReconnectRetries lets Venus redial a server and re-issue a call after
	// a transport failure (server crash or long outage); 0 fails fast. A
	// re-issued call is a new connection, outside the transport's
	// at-most-once window, so mutating callers tolerate re-execution (see
	// createFile's handling of ErrExist).
	ReconnectRetries int
	// RevalidateBatch caps how many cached entries one BulkTestValid RPC
	// revalidates during a sweep (reconnection or TTL). 0 uses
	// DefaultRevalidateBatch; 1 degenerates to one legacy TestValid RPC per
	// entry — the unbatched protocol, kept for ablation experiments.
	RevalidateBatch int
	// Tracer records spans for opens, closes, validations, fetches and
	// stores; nil disables tracing at near-zero cost.
	Tracer *trace.Tracer
	// Metrics receives cache hit/miss counters and per-operation latency
	// histograms; nil disables.
	Metrics *trace.Registry
	// Flight, when set, receives operational events — degraded-mode entry
	// and exit, revalidation sweeps — for the flight recorder. Nil disables.
	Flight *trace.Recorder
	// Blocks, when set, interns every fetched file's content into a
	// content-addressed index before it is written to the cache, so
	// identical blocks fetched by the workstations sharing the index (the
	// common case for system binaries served from replicated read-only
	// volumes) are held once and the dedup ratio is measurable. Nil
	// disables.
	Blocks *replica.Index
}

// entry is one cached whole file (or directory listing, or status-only
// record).
type entry struct {
	path      string // canonical Vice path (prototype key; hint in revised)
	fid       proto.FID
	status    proto.Status
	cacheFile string // local file holding the data ("" = status-only)
	// dirEnts memoizes the decoded listing of a cached directory file. It is
	// dropped whenever cacheFile is rewritten (install, local write) and
	// replaced in place by patchDir; resolution walks read it on every path
	// component, so re-decoding per walk would dominate the client's
	// allocation profile. Callers must not modify the returned slice.
	dirEnts   []proto.DirEntry
	valid     bool     // revised: callback promise still held
	dirty     bool     // modified locally, not yet stored
	open      int      // open handle count (pinned)
	fetchedAt sim.Time // when the copy (and its promise) was last confirmed
	lruEl     *list.Element
}

// Venus is one workstation's cache manager.
type Venus struct {
	cfg Config

	mu     sync.Mutex
	user   string               // guarded by mu
	conns  map[string]Conn      // guarded by mu
	byPath map[string]*entry    // guarded by mu
	byFID  map[proto.FID]*entry // guarded by mu
	// front = most recently used
	// guarded by mu
	lru    *list.List
	bytes  int64 // guarded by mu
	nextID int64 // guarded by mu
	// volume -> location
	// guarded by mu
	volLoc map[uint32]proto.CustodianReply
	// prefix -> location
	// guarded by mu
	pathLoc map[string]proto.CustodianReply
	stats   Stats // guarded by mu
	// breakGen counts callback breaks received. Fetch and store snapshot
	// it around their RPCs: a break that lands mid-flight must win over the
	// reply's "valid" — otherwise a racing writer's invalidation would be
	// silently clobbered and this workstation would stay stale forever.
	// guarded by mu
	breakGen int64
	// sweepPending is set when a dead connection is dropped: the server may
	// have restarted and lost its callback table, so before the next open
	// trusts any promise, the whole cache is revalidated in bulk.
	// guarded by mu
	sweepPending bool
	// degradedMode is set while cached copies are being served read-only
	// because a custodian is unreachable; a revalidation sweep that reaches
	// every custodian clears it. Drives the flight recorder's degraded
	// entry/exit events.
	// guarded by mu
	degradedMode bool

	// Cached metric handles, resolved once at construction: opens are the
	// hot path and registry lookups hash the metric name under a mutex.
	// All are nil (and their methods no-ops) without a registry.
	mCacheHits *trace.Counter
	mCacheMiss *trace.Counter
	mFailover  *trace.Counter
	mBreaks    *trace.Counter
	mOpenLat   *trace.Histogram
	mStoreLat  *trace.Histogram
}

// New creates a Venus. Call Login before any file operation.
func New(cfg Config) *Venus {
	if cfg.CacheDir == "" {
		cfg.CacheDir = "/cache"
	}
	if cfg.MaxFiles == 0 {
		cfg.MaxFiles = 200 // the prototype's count limit
	}
	if cfg.MaxBytes == 0 {
		cfg.MaxBytes = 20 << 20 // a 1980s workstation disk partition
	}
	_ = cfg.Local.MkdirAll(cfg.CacheDir, 0o700, "venus")
	return &Venus{
		cfg:        cfg,
		conns:      make(map[string]Conn),
		byPath:     make(map[string]*entry),
		byFID:      make(map[proto.FID]*entry),
		lru:        list.New(),
		volLoc:     make(map[uint32]proto.CustodianReply),
		pathLoc:    make(map[string]proto.CustodianReply),
		mCacheHits: cfg.Metrics.Counter(trace.MetricVenusCacheHits),
		mCacheMiss: cfg.Metrics.Counter(trace.MetricVenusCacheMisses),
		mFailover:  cfg.Metrics.Counter(trace.MetricVenusFailover),
		mBreaks:    cfg.Metrics.Counter(trace.MetricVenusCallbackBreaks),
		mOpenLat:   cfg.Metrics.Histogram(trace.MetricVenusOpenLatency),
		mStoreLat:  cfg.Metrics.Histogram(trace.MetricVenusStoreLatency),
	}
}

// Login sets the workstation's user. Existing connections (authenticated
// as the previous user) are discarded. When the user actually changes —
// someone else sits down at a public workstation — every clean cached entry
// is invalidated: the data stays on the local disk (nothing can hide it
// from the machine's owner), but Venus will revalidate or refetch before
// serving it, so the custodian's access lists are enforced for the new
// identity. A same-user re-login keeps the warm cache.
func (v *Venus) Login(user string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if user != v.user && v.user != "" {
		for _, e := range v.byFID {
			if !e.dirty {
				e.valid = false
			}
		}
		for _, e := range v.byPath {
			if !e.dirty {
				e.valid = false
			}
		}
	}
	v.user = user
	v.conns = make(map[string]Conn)
}

// User returns the current user.
func (v *Venus) User() string {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.user
}

// Stats returns a copy of the counters.
func (v *Venus) Stats() Stats {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.stats
}

// ResetStats zeroes the counters (between experiment phases).
func (v *Venus) ResetStats() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.stats = Stats{}
}

// CacheUsage reports the cached entry count and byte total.
func (v *Venus) CacheUsage() (files int, bytes int64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.lru.Len(), v.bytes
}

// Flags for Open.
type OpenFlag uint32

// Open flags, a subset of Unix open(2).
const (
	FlagRead   OpenFlag = 1 << iota // open for reading
	FlagWrite                       // open for writing
	FlagCreate                      // create if absent
	FlagTrunc                       // truncate on open
)

// Handle is an open Vice file: reads and writes go to the cached copy; the
// store happens at Close (§3.2).
type Handle struct {
	v      *Venus
	e      *entry
	flags  OpenFlag
	offset int64
	closed bool
}

// Open opens the Vice file at path (a path inside the shared space, e.g.
// "/usr/satya/paper.mss").
func (v *Venus) Open(p *sim.Proc, path string, flags OpenFlag) (*Handle, error) {
	path = unixfs.Clean(path)
	// Opens are the hot path: when observability is off entirely, skip even
	// the stats snapshots the hit/miss accounting needs.
	if v.cfg.Tracer != nil || v.cfg.Metrics != nil {
		sp := v.cfg.Tracer.Begin(p, trace.SpanVenusOpen, v.cfg.Machine)
		sp.SetStr("path", path)
		started := v.now(p)
		v.mu.Lock()
		beforeHits, beforeMisses := v.stats.Hits, v.stats.Misses
		v.mu.Unlock()
		defer func() {
			v.mu.Lock()
			hits, misses := v.stats.Hits-beforeHits, v.stats.Misses-beforeMisses
			v.mu.Unlock()
			sp.SetInt("hit", hits)
			v.mCacheHits.Add(hits)
			v.mCacheMiss.Add(misses)
			sp.End()
			v.mOpenLat.Observe(v.now(p).Sub(started))
		}()
	}
	e, err := v.lookupEntry(p, path, flags)
	if err != nil {
		return nil, err
	}
	v.mu.Lock()
	e.open++
	v.touch(e)
	v.mu.Unlock()
	h := &Handle{v: v, e: e, flags: flags}
	if flags&FlagTrunc != 0 {
		if err := v.cfg.Local.Truncate(e.cacheFile, 0); err != nil {
			v.mu.Lock()
			e.open--
			v.mu.Unlock()
			return nil, err
		}
		v.mu.Lock()
		e.dirty = true
		e.dirEnts = nil
		v.mu.Unlock()
	}
	return h, nil
}

// lookupEntry finds or creates the cache entry for path, fetching data from
// Vice as needed. This is where the two validation disciplines differ.
func (v *Venus) lookupEntry(p *sim.Proc, path string, flags OpenFlag) (*entry, error) {
	if v.cfg.Mode == vice.Prototype {
		return v.lookupPrototype(p, path, flags)
	}
	return v.lookupRevised(p, path, flags)
}

// lookupPrototype implements check-on-open: a cached copy is revalidated
// with the custodian on every open.
func (v *Venus) lookupPrototype(p *sim.Proc, path string, flags OpenFlag) (*entry, error) {
	v.mu.Lock()
	v.stats.Opens++
	e := v.byPath[path]
	v.mu.Unlock()
	if e != nil && e.cacheFile != "" {
		if e.dirty {
			// Locally modified and not yet stored: our copy is the newest.
			v.mu.Lock()
			v.stats.Hits++
			v.mu.Unlock()
			return e, nil
		}
		ok, version, err := v.testValid(p, proto.Ref{Path: path}, e.status.Version)
		if err != nil {
			if isTransportErr(err) {
				if de, served := v.degraded(e, flags); served {
					return de, nil
				}
			}
			return nil, err
		}
		if ok {
			v.mu.Lock()
			v.stats.Hits++
			v.mu.Unlock()
			return e, nil
		}
		_ = version
		v.invalidate(e)
	}
	return v.fetchEntry(p, proto.Ref{Path: path}, path, flags)
}

// isTransportErr reports a transport-level failure — no response at all —
// as opposed to the server rejecting the request.
func isTransportErr(err error) bool {
	return errors.Is(err, rpc.ErrUnreachable) || errors.Is(err, rpc.ErrClosed)
}

// isRedialable reports whether a fresh dial may fix the failure: transport
// errors, or a reconnect handshake that failed verification — on a lossy
// network a corrupted hello is indistinguishable from an attack by design,
// so the bounded redial budget, not the first mangled frame, decides when
// to give up.
func isRedialable(err error) bool {
	return isTransportErr(err) || errors.Is(err, secure.ErrAuthFailed)
}

// degraded serves a cached copy read-only while its custodian is
// unreachable (§2.2: network or server failures cause at worst a temporary,
// partial loss of service — not an error on data we already hold). Only
// copies not known stale qualify, and write-intent opens still fail: the
// write-on-close store would be lost.
func (v *Venus) degraded(e *entry, flags OpenFlag) (*entry, bool) {
	if e == nil || e.cacheFile == "" || !e.valid {
		return nil, false
	}
	if flags&(FlagWrite|FlagTrunc|FlagCreate) != 0 {
		return nil, false
	}
	v.mu.Lock()
	v.stats.DegradedReads++
	first := !v.degradedMode
	v.degradedMode = true
	v.mu.Unlock()
	if first && v.cfg.Flight != nil {
		v.cfg.Flight.Log(trace.EventVenusDegradedEnter, v.cfg.Machine,
			"custodian unreachable; serving cached copies read-only (first: "+e.path+")")
	}
	return e, true
}

// noteSweep records a completed revalidation sweep in the flight recorder
// and, when the sweep reached every custodian, ends degraded mode: a sweep
// that got answers from the servers proves they are reachable again.
func (v *Venus) noteSweep(force bool, checked, stale int, err error) {
	v.mu.Lock()
	wasDegraded := v.degradedMode
	if err == nil {
		v.degradedMode = false
	}
	v.mu.Unlock()
	fl := v.cfg.Flight
	if fl == nil {
		return
	}
	fl.Log(trace.EventVenusReconnectSweep, v.cfg.Machine,
		fmt.Sprintf("forced=%t checked=%d stale=%d ok=%t", force, checked, stale, err == nil))
	if wasDegraded && err == nil {
		fl.Log(trace.EventVenusDegradedExit, v.cfg.Machine, "revalidation sweep reached every custodian")
	}
}

// now returns the virtual time, or zero when Venus runs outside the
// simulator (real transports pass a nil proc).
func (v *Venus) now(p *sim.Proc) sim.Time {
	if p == nil {
		return 0
	}
	return p.Now()
}

// freshLocked reports whether a revised-mode entry may be served with no
// server traffic: its promise must be intact and, under a CallbackTTL,
// recent enough. Caller holds v.mu.
func (v *Venus) freshLocked(e *entry, now sim.Time) bool {
	if !e.valid {
		return false
	}
	if v.cfg.CallbackTTL <= 0 {
		return true
	}
	return now.Sub(e.fetchedAt) <= v.cfg.CallbackTTL
}

// lookupRevised trusts callbacks: a valid cached copy needs no server
// traffic at all.
func (v *Venus) lookupRevised(p *sim.Proc, path string, flags OpenFlag) (*entry, error) {
	v.mu.Lock()
	v.stats.Opens++
	sweep := v.sweepPending
	v.sweepPending = false
	v.mu.Unlock()
	if sweep {
		// A connection died since the last open: the server may have
		// restarted and wiped its callback table, so no promise can be
		// trusted. Revalidate the whole cache in bulk before serving; a
		// failed sweep just leaves entries to the per-open paths below.
		_, _, _ = v.Revalidate(p, true)
	}
	fid, err := v.Resolve(p, path)
	if err != nil {
		if proto.ErrToCode(err) == proto.CodeNoEnt && flags&FlagCreate != 0 {
			return v.createFile(p, path)
		}
		if isTransportErr(err) {
			// Resolution needed the server (cached directories expired or
			// missing) and the server is gone; fall back to the last cached
			// copy of the file itself, if we hold one.
			v.mu.Lock()
			e := v.byPath[path]
			v.mu.Unlock()
			if de, served := v.degraded(e, flags); served {
				return de, nil
			}
		}
		return nil, err
	}
	v.mu.Lock()
	e := v.byFID[fid]
	now := v.now(p)
	hit := false
	var expired *entry
	if e != nil && e.cacheFile != "" {
		if e.dirty || v.freshLocked(e, now) {
			hit = true
		} else if e.valid {
			expired = e // promise outlived its TTL: revalidate, don't refetch
		}
	}
	if hit {
		v.stats.Hits++
	}
	v.mu.Unlock()
	if hit {
		return e, nil
	}
	if expired != nil {
		ok, _, verr := v.testValid(p, proto.Ref{FID: fid}, expired.status.Version)
		switch {
		case verr != nil:
			if isTransportErr(verr) {
				if de, served := v.degraded(expired, flags); served {
					return de, nil
				}
			}
			return nil, verr
		case ok:
			// Still current; the server re-promised in the same call (its
			// callback table is rebuilt even if it restarted meanwhile).
			v.mu.Lock()
			expired.fetchedAt = now
			v.stats.Hits++
			v.mu.Unlock()
			return expired, nil
		default:
			v.invalidate(expired)
		}
	}
	fe, ferr := v.fetchEntry(p, proto.Ref{FID: fid}, path, flags)
	if ferr != nil && isTransportErr(ferr) {
		if de, served := v.degraded(e, flags); served {
			return de, nil
		}
	}
	return fe, ferr
}

// testValid asks the custodian whether a cached version is current.
func (v *Venus) testValid(p *sim.Proc, ref proto.Ref, version uint64) (bool, uint64, error) {
	sp := v.cfg.Tracer.Begin(p, trace.SpanVenusValidate, v.cfg.Machine)
	defer sp.End()
	v.mu.Lock()
	v.stats.Validations++
	v.mu.Unlock()
	resp, err := v.callPath(p, ref.Path, rpc.Request{
		Op:   rpc.Op(proto.OpTestValid),
		Body: proto.Marshal(proto.TestValidArgs{Ref: ref, Version: version}),
	})
	if err != nil {
		return false, 0, err
	}
	if !resp.OK() {
		return false, 0, proto.CodeToErr(resp.Code, string(resp.Body))
	}
	tv, err := proto.Unmarshal(resp.Body, proto.DecodeTestValidReply)
	if err != nil {
		return false, 0, err
	}
	return tv.Valid, tv.Version, nil
}

// fetchEntry fetches the whole file from its custodian into the cache.
func (v *Venus) fetchEntry(p *sim.Proc, ref proto.Ref, path string, flags OpenFlag) (*entry, error) {
	sp := v.cfg.Tracer.Begin(p, trace.SpanVenusFetch, v.cfg.Machine)
	sp.SetStr("path", path)
	defer sp.End()
	v.mu.Lock()
	v.stats.Fetches++
	gen := v.breakGen
	v.mu.Unlock()
	resp, err := v.callRef(p, ref, path, rpc.Request{
		Op:   rpc.Op(proto.OpFetch),
		Body: proto.Marshal(proto.FetchArgs{Ref: ref}),
	})
	if err != nil {
		return nil, err
	}
	if resp.Code == proto.CodeNoEnt && flags&FlagCreate != 0 {
		return v.createFile(p, path)
	}
	if !resp.OK() {
		return nil, proto.CodeToErr(resp.Code, string(resp.Body))
	}
	st, err := proto.Unmarshal(resp.Body, proto.DecodeStatus)
	if err != nil {
		return nil, err
	}
	v.mu.Lock()
	v.stats.Misses++
	v.stats.BytesFetched += int64(len(resp.Bulk))
	v.mu.Unlock()
	e, err := v.installEntry(path, st, resp.Bulk, v.now(p))
	if err != nil {
		return nil, err
	}
	v.mu.Lock()
	if v.breakGen != gen {
		// A break arrived while the fetch was in flight; the copy we just
		// installed may already be stale. Conservatively revalidate next
		// open rather than trust it.
		e.valid = false
	}
	v.mu.Unlock()
	return e, nil
}

// createFile creates a new empty file at path on the custodian.
func (v *Venus) createFile(p *sim.Proc, path string) (*entry, error) {
	dir, name := unixfs.Dir(path), unixfs.Base(path)
	dirRef, err := v.refForDir(p, dir)
	if err != nil {
		return nil, err
	}
	resp, err := v.callRef(p, dirRef, dir, rpc.Request{
		Op:   rpc.Op(proto.OpCreate),
		Body: proto.Marshal(proto.NameArgs{Dir: dirRef, Name: name, Mode: 0o644}),
	})
	if err != nil {
		return nil, err
	}
	if resp.Code == proto.CodeExist {
		// The file appeared between our lookup and the create — either a
		// concurrent creator won, or our own earlier attempt executed but
		// its reply was lost and a reconnect re-issued it. FlagCreate has
		// no exclusive semantics, so open the existing file.
		v.dropDir(dir)
		return v.fetchEntry(p, proto.Ref{Path: path}, path, 0)
	}
	if !resp.OK() {
		return nil, proto.CodeToErr(resp.Code, string(resp.Body))
	}
	st, err := proto.Unmarshal(resp.Body, proto.DecodeStatus)
	if err != nil {
		return nil, err
	}
	// Keep the cached directory listing usable: patch the new entry in
	// (revised mode), else drop the now-stale copy.
	if v.cfg.Mode != vice.Revised || !v.patchDir(dirRef.FID, patchAdd(name, proto.TypeFile), resp) {
		v.dropDir(dir)
	}
	return v.installEntry(path, st, nil, v.now(p))
}

// installEntry writes fetched data into the local cache and indexes it.
func (v *Venus) installEntry(path string, st proto.Status, data []byte, now sim.Time) (*entry, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	e := v.byFID[st.FID]
	if e == nil && path != "" {
		e = v.byPath[path]
	}
	if e == nil {
		v.nextID++
		e = &entry{cacheFile: fmt.Sprintf("%s/c%d", v.cfg.CacheDir, v.nextID)}
	} else if e.cacheFile == "" {
		v.nextID++
		e.cacheFile = fmt.Sprintf("%s/c%d", v.cfg.CacheDir, v.nextID)
	} else {
		v.bytes -= e.status.Size
	}
	if ix := v.cfg.Blocks; ix != nil {
		data = ix.Intern(data)
	}
	if err := v.cfg.Local.WriteFile(e.cacheFile, data, 0o600, "venus"); err != nil {
		return nil, err
	}
	e.path = path
	e.fid = st.FID
	e.status = st
	e.dirEnts = nil
	e.valid = true
	e.dirty = false
	e.fetchedAt = now
	v.bytes += st.Size
	v.index(e)
	v.touch(e)
	v.evictLocked()
	return e, nil
}

// index registers the entry under both keys. Caller holds v.mu.
//
//itcvet:holds mu
func (v *Venus) index(e *entry) {
	if e.path != "" {
		v.byPath[e.path] = e
	}
	if !e.fid.IsZero() {
		v.byFID[e.fid] = e
	}
	if e.lruEl == nil {
		e.lruEl = v.lru.PushFront(e)
	}
}

// touch moves the entry to the LRU front. Caller holds v.mu.
//
//itcvet:holds mu
func (v *Venus) touch(e *entry) {
	if e.lruEl != nil {
		v.lru.MoveToFront(e.lruEl)
	}
}

// evictLocked enforces the cache limit: entry count in prototype mode,
// bytes in revised mode (§5.3). Dirty or open entries are never evicted.
//
//itcvet:holds mu
func (v *Venus) evictLocked() {
	over := func() bool {
		if v.cfg.Mode == vice.Prototype {
			return v.lru.Len() > v.cfg.MaxFiles
		}
		return v.bytes > v.cfg.MaxBytes
	}
	el := v.lru.Back()
	for over() && el != nil {
		prev := el.Prev()
		e := el.Value.(*entry)
		if e.open == 0 && !e.dirty {
			v.removeLocked(e)
			v.stats.Evictions++
		}
		el = prev
	}
}

// removeLocked drops an entry entirely. Caller holds v.mu.
//
//itcvet:holds mu
func (v *Venus) removeLocked(e *entry) {
	if e.lruEl != nil {
		v.lru.Remove(e.lruEl)
		e.lruEl = nil
	}
	if e.path != "" {
		delete(v.byPath, e.path)
	}
	if !e.fid.IsZero() {
		delete(v.byFID, e.fid)
	}
	if e.cacheFile != "" {
		v.bytes -= e.status.Size
		_ = v.cfg.Local.Remove(e.cacheFile)
	}
}

// invalidate marks a cached copy unusable without touching its data file.
func (v *Venus) invalidate(e *entry) {
	v.mu.Lock()
	defer v.mu.Unlock()
	e.valid = false
}

// dropDir removes a cached directory listing after a local mutation makes
// it stale (the server does not break the mutator's own callback).
func (v *Venus) dropDir(path string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if e := v.byPath[unixfs.Clean(path)]; e != nil {
		v.removeLocked(e)
	}
}

// HandleCallbackBreak is wired to OpCallbackBreak on the workstation's
// endpoint: Vice tells us a cached copy is no longer valid.
func (v *Venus) HandleCallbackBreak(_ rpc.Ctx, req rpc.Request) rpc.Response {
	args, err := proto.Unmarshal(req.Body, proto.DecodeCallbackBreakArgs)
	if err != nil {
		return rpc.Response{Code: proto.CodeBadRequest}
	}
	v.mBreaks.Inc()
	v.mu.Lock()
	defer v.mu.Unlock()
	v.stats.CallbackBreaks++
	v.breakGen++
	if e := v.byFID[args.FID]; e != nil {
		e.valid = false
	}
	if args.Path != "" {
		if e := v.byPath[unixfs.Clean(args.Path)]; e != nil {
			e.valid = false
		}
	}
	return rpc.Response{}
}

// HandleBulkBreak is wired to OpBulkBreak on the workstation's endpoint:
// one callback RPC invalidating many cached copies at once, the coalesced
// form of OpCallbackBreak.
func (v *Venus) HandleBulkBreak(_ rpc.Ctx, req rpc.Request) rpc.Response {
	args, err := proto.Unmarshal(req.Body, proto.DecodeBulkBreakArgs)
	if err != nil {
		return rpc.Response{Code: proto.CodeBadRequest}
	}
	v.mBreaks.Add(int64(len(args.Items)))
	v.mu.Lock()
	defer v.mu.Unlock()
	v.stats.CallbackBreaks += int64(len(args.Items))
	v.breakGen++
	for _, it := range args.Items {
		if e := v.byFID[it.FID]; e != nil {
			e.valid = false
		}
		if it.Path != "" {
			if e := v.byPath[unixfs.Clean(it.Path)]; e != nil {
				e.valid = false
			}
		}
	}
	return rpc.Response{}
}

// Read reads from the cached copy at the handle's offset.
func (h *Handle) Read(buf []byte) (int, error) {
	n, err := h.ReadAt(buf, h.offset)
	h.offset += int64(n)
	return n, err
}

// ReadAt reads from the cached copy at an absolute offset.
func (h *Handle) ReadAt(buf []byte, off int64) (int, error) {
	if h.closed {
		return 0, fmt.Errorf("%w: handle closed", proto.ErrBadRequest)
	}
	return h.v.cfg.Local.ReadAt(h.e.cacheFile, buf, off)
}

// Write writes to the cached copy at the handle's offset. Vice is not
// contacted until Close.
func (h *Handle) Write(buf []byte) (int, error) {
	n, err := h.WriteAt(buf, h.offset)
	h.offset += int64(n)
	return n, err
}

// WriteAt writes to the cached copy at an absolute offset.
func (h *Handle) WriteAt(buf []byte, off int64) (int, error) {
	if h.closed {
		return 0, fmt.Errorf("%w: handle closed", proto.ErrBadRequest)
	}
	if h.flags&FlagWrite == 0 {
		return 0, fmt.Errorf("%w: handle not open for writing", proto.ErrAccess)
	}
	n, err := h.v.cfg.Local.WriteAt(h.e.cacheFile, buf, off)
	if err == nil {
		h.v.mu.Lock()
		h.e.dirty = true
		h.e.dirEnts = nil
		h.v.mu.Unlock()
	}
	return n, err
}

// Seek positions the handle (whence 0=set, 1=cur, 2=end).
func (h *Handle) Seek(off int64, whence int) (int64, error) {
	switch whence {
	case 0:
		h.offset = off
	case 1:
		h.offset += off
	case 2:
		st, err := h.v.cfg.Local.Stat(h.e.cacheFile)
		if err != nil {
			return 0, err
		}
		h.offset = st.Size + off
	default:
		return 0, fmt.Errorf("%w: whence %d", proto.ErrBadRequest, whence)
	}
	return h.offset, nil
}

// Status returns the Vice status of the open file (as of open/last store).
func (h *Handle) Status() proto.Status { return h.e.status }

// Close releases the handle. If the cached copy was modified, it is
// transmitted to the custodian now — write-on-close, which keeps crash
// recovery simple and approximates timesharing visibility (§3.2).
func (h *Handle) Close(p *sim.Proc) error {
	if h.closed {
		return nil
	}
	h.closed = true
	v := h.v
	defer func() {
		v.mu.Lock()
		h.e.open--
		v.mu.Unlock()
	}()
	v.mu.Lock()
	dirty := h.e.dirty
	v.mu.Unlock()
	if !dirty {
		return nil
	}
	if err := v.storeEntry(p, h.e); err != nil {
		// The store failed and the caller is told so. Drop the modified
		// copy: left dirty it would be served by every later open and
		// silently stored by a later close — a write the application saw
		// fail must never resurrect.
		v.mu.Lock()
		h.e.dirty = false
		h.e.valid = false
		v.mu.Unlock()
		return err
	}
	return nil
}

// storeEntry transmits the cached copy back to the custodian.
func (v *Venus) storeEntry(p *sim.Proc, e *entry) error {
	sp := v.cfg.Tracer.Begin(p, trace.SpanVenusStore, v.cfg.Machine)
	sp.SetStr("path", e.path)
	started := v.now(p)
	defer func() {
		sp.End()
		v.mStoreLat.Observe(v.now(p).Sub(started))
	}()
	data, err := v.cfg.Local.ReadFile(e.cacheFile)
	if err != nil {
		return err
	}
	ref := proto.Ref{Path: e.path}
	if v.cfg.Mode == vice.Revised {
		ref = proto.Ref{FID: e.fid}
	}
	v.mu.Lock()
	v.stats.Stores++
	v.stats.BytesStored += int64(len(data))
	gen := v.breakGen
	v.mu.Unlock()
	resp, err := v.callRef(p, ref, e.path, rpc.Request{
		Op:   rpc.Op(proto.OpStore),
		Body: proto.Marshal(proto.StoreArgs{Ref: ref}),
		Bulk: data,
	})
	if err != nil {
		return err
	}
	if !resp.OK() {
		return proto.CodeToErr(resp.Code, string(resp.Body))
	}
	st, err := proto.Unmarshal(resp.Body, proto.DecodeStatus)
	if err != nil {
		return err
	}
	v.mu.Lock()
	v.bytes += st.Size - e.status.Size
	e.status = st
	e.fid = st.FID
	e.dirty = false
	// Valid only if no break raced the store: a concurrent writer may have
	// superseded our version while the reply was in flight.
	e.valid = v.breakGen == gen
	e.fetchedAt = v.now(p)
	v.index(e)
	v.evictLocked() // the stored file may have grown past the cache limit
	v.mu.Unlock()
	return nil
}
