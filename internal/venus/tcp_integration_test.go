package venus

import (
	"net"
	"sync"
	"testing"

	"itcfs/internal/prot"
	"itcfs/internal/proto"
	"itcfs/internal/rpc"
	"itcfs/internal/secure"
	"itcfs/internal/sim"
	"itcfs/internal/unixfs"
	"itcfs/internal/vice"
	"itcfs/internal/volume"
)

// Venus over the real TCP transport: the same cache-manager logic the
// simulator evaluates, talking to the same Vice server code, through
// authenticated encrypted rpc.Peer connections — exactly what cmd/itcfsd
// and cmd/itcfs deploy.

// tcpCell serves one Vice server on a real TCP listener.
type tcpCell struct {
	srv  *vice.Server
	db   *prot.DB
	addr string
	l    net.Listener
	wg   sync.WaitGroup
}

func newTCPCell(t *testing.T, mode vice.Mode) *tcpCell {
	t.Helper()
	db := prot.NewDB()
	for _, m := range []prot.Mutation{
		{Kind: prot.MutAddUser, Name: "satya", Key: secure.DeriveKey("satya", "pw")},
		{Kind: prot.MutAddUser, Name: "howard", Key: secure.DeriveKey("howard", "pw")},
		{Kind: prot.MutAddGroup, Name: vice.AdminGroup},
	} {
		if err := db.Apply(m); err != nil {
			t.Fatal(err)
		}
	}
	next := uint32(1)
	srv := vice.New(vice.Config{
		Name: "tcp0", Mode: mode, DB: db,
		AllocVolID: func() uint32 { next++; return next },
	})
	acl := prot.NewACL()
	acl.Grant(prot.AnyUser, prot.RightsAll) // open cell: this test is about transport
	srv.AddVolume(volume.New(1, "root", acl, 0, "satya", nil))
	srv.Loc().Install([]proto.LocEntry{{Prefix: "/", Volume: 1, Custodian: "tcp0"}}, nil)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := &tcpCell{srv: srv, db: db, addr: l.Addr().String(), l: l}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				peer, err := rpc.AcceptPeer(nc, db.LookupKey, srv.Dispatcher())
				if err != nil {
					nc.Close()
					return
				}
				<-peer.Done()
				srv.Callbacks().Drop(peer)
			}(conn)
		}
	}()
	t.Cleanup(func() { l.Close(); c.wg.Wait() })
	return c
}

// tcpVenus is a full workstation connected over TCP.
func (c *tcpCell) tcpVenus(t *testing.T, mode vice.Mode, user, password string) *Venus {
	t.Helper()
	cbServer := rpc.NewServer()
	var v *Venus
	v = New(Config{
		Mode:       mode,
		Machine:    "tcp-ws-" + user,
		Local:      unixfs.New(nil),
		HomeServer: "tcp0",
		Connect: func(_ *sim.Proc, server string) (Conn, error) {
			nc, err := net.Dial("tcp", c.addr)
			if err != nil {
				return nil, err
			}
			peer, err := rpc.DialPeer(nc, user, secure.DeriveKey(user, password), cbServer)
			if err != nil {
				nc.Close()
				return nil, err
			}
			t.Cleanup(func() { peer.Close() })
			return peer, nil
		},
	})
	cbServer.Handle(rpc.Op(proto.OpCallbackBreak), v.HandleCallbackBreak)
	v.Login(user)
	return v
}

func TestVenusOverTCPRoundTrip(t *testing.T) {
	for _, mode := range []vice.Mode{vice.Prototype, vice.Revised} {
		t.Run(mode.String(), func(t *testing.T) {
			c := newTCPCell(t, mode)
			v := c.tcpVenus(t, mode, "satya", "pw")
			writeFile(t, v, "/doc", "over real TCP with real encryption")
			if got := readFile(t, v, "/doc"); got != "over real TCP with real encryption" {
				t.Fatalf("read %q", got)
			}
			if err := v.Mkdir(nil, "/dir", 0o755); err != nil {
				t.Fatal(err)
			}
			entries, err := v.ReadDir(nil, "/")
			if err != nil || len(entries) != 2 {
				t.Fatalf("ReadDir: %+v %v", entries, err)
			}
		})
	}
}

func TestVenusOverTCPCallbackBreak(t *testing.T) {
	c := newTCPCell(t, vice.Revised)
	reader := c.tcpVenus(t, vice.Revised, "satya", "pw")
	writer := c.tcpVenus(t, vice.Revised, "howard", "pw")

	writeFile(t, reader, "/shared", "v1")
	if got := readFile(t, reader, "/shared"); got != "v1" {
		t.Fatalf("warm read %q", got)
	}
	// howard stores a new version over his own TCP connection; the server
	// breaks satya's callback over hers.
	writeFile(t, writer, "/shared", "v2")
	if got := readFile(t, reader, "/shared"); got != "v2" {
		t.Fatalf("after remote update: %q", got)
	}
	if reader.Stats().CallbackBreaks == 0 {
		t.Fatal("no callback break delivered over TCP")
	}
}

func TestVenusOverTCPWrongPassword(t *testing.T) {
	c := newTCPCell(t, vice.Revised)
	v := c.tcpVenus(t, vice.Revised, "satya", "wrong")
	if _, err := v.Stat(nil, "/"); err == nil {
		t.Fatal("operations succeeded with a wrong password")
	}
}
