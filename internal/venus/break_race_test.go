package venus

import (
	"fmt"
	"testing"

	"itcfs/internal/proto"
	"itcfs/internal/rpc"
	"itcfs/internal/sim"
	"itcfs/internal/unixfs"
	"itcfs/internal/vice"
)

// Regression coverage for the fetch/break race: a callback break that lands
// while a Fetch is in flight must not be clobbered when the fetched copy is
// installed. fetchEntry snapshots breakGen around the RPC for exactly this;
// without it the entry would be installed valid, the promise would look
// intact, and this workstation would serve the superseded copy forever.

// hookConn wraps a Conn and runs a hook between receiving each successful
// response and handing it back to Venus — the window where a break can race
// the install.
type hookConn struct {
	inner Conn
	hook  func(req rpc.Request, resp rpc.Response)
}

func (c hookConn) Call(p *sim.Proc, req rpc.Request) (rpc.Response, error) {
	resp, err := c.inner.Call(p, req)
	if err == nil && c.hook != nil {
		c.hook(req, resp)
	}
	return resp, err
}

// newHookedVenus builds a Venus like testCell.newVenus, but with every
// connection wrapped in a hookConn sharing one hook function.
func newHookedVenus(c *testCell, home, user string, hook *func(rpc.Request, rpc.Response)) *Venus {
	local := unixfs.New(func() int64 { c.clock++; return c.clock })
	cfg := Config{
		Mode:       c.mode,
		Machine:    "ws-hooked-" + user,
		Local:      local,
		HomeServer: home,
	}
	var v *Venus
	back := &wsBack{}
	cfg.Connect = func(_ *sim.Proc, server string) (Conn, error) {
		s, ok := c.servers[server]
		if !ok {
			return nil, fmt.Errorf("no such server %s", server)
		}
		return hookConn{
			inner: wsConn{srv: s, user: v.User, back: back},
			hook:  func(req rpc.Request, resp rpc.Response) { (*hook)(req, resp) },
		}, nil
	}
	v = New(cfg)
	back.v = v
	v.Login(user)
	return v
}

func TestBreakDuringInFlightFetchNotClobbered(t *testing.T) {
	c := newTestCell(t, vice.Revised, "s0")
	c.mkVolume("u", "/u", "satya", 0)
	w := c.newVenus("s0", "satya", nil)

	hook := func(rpc.Request, rpc.Response) {}
	v := newHookedVenus(c, "s0", "satya", &hook)

	const path = "/u/f"
	writeFile(t, w, path, "v1")
	if got := readFile(t, v, path); got != "v1" {
		t.Fatalf("initial read: got %q, want v1", got)
	}
	v.mu.Lock()
	fid := v.byPath[path].fid
	v.mu.Unlock()

	// Invalidate the reader's copy so its next open must fetch.
	writeFile(t, w, path, "v2")

	// Arm: when the reader's Fetch for this file completes at the server but
	// before Venus installs the v2 copy, the writer supersedes it with v3 —
	// whose callback break is delivered (synchronously here) mid-fetch.
	fired := false
	hook = func(req rpc.Request, resp rpc.Response) {
		if fired || req.Op != rpc.Op(proto.OpFetch) || !resp.OK() {
			return
		}
		args, err := proto.Unmarshal(req.Body, proto.DecodeFetchArgs)
		if err != nil || args.Ref.FID != fid {
			return
		}
		fired = true
		writeFile(t, w, path, "v3")
	}
	if got := readFile(t, v, path); got != "v2" {
		// The open raced the v3 store and fetched before it landed; serving
		// the copy the open bound to is timesharing semantics.
		t.Fatalf("racing read: got %q, want v2", got)
	}
	if !fired {
		t.Fatal("hook never fired; the race was not exercised")
	}

	// The mid-flight break must have marked the just-installed copy invalid.
	v.mu.Lock()
	valid := v.byPath[path].valid
	v.mu.Unlock()
	if valid {
		t.Fatal("entry installed by the racing fetch still claims a valid promise")
	}

	// And the next open must go back to the custodian and see v3, not serve
	// the superseded v2 copy off a resurrected promise.
	before := v.Stats().Fetches
	if got := readFile(t, v, path); got != "v3" {
		t.Fatalf("post-race read: got %q, want v3 (stale copy resurrected)", got)
	}
	if v.Stats().Fetches == before {
		t.Fatal("post-race open trusted the cache instead of revalidating")
	}
}
