package venus

// Replica selection and failover: serverOrder's documented preference rule
// is pinned exactly, and a custodian crash mid-workload moves reads to a
// surviving replica instead of failing them.

import (
	"fmt"
	"reflect"
	"testing"

	"itcfs/internal/proto"
	"itcfs/internal/rpc"
	"itcfs/internal/sim"
	"itcfs/internal/unixfs"
	"itcfs/internal/vice"
)

// TestServerOrderPinned pins the deterministic preference rule: home server
// first when it holds a copy, then the custodian, then the remaining
// replicas in lexicographic order, duplicates dropped. Mutations see only
// the custodian.
func TestServerOrderPinned(t *testing.T) {
	clock := int64(0)
	v := New(Config{
		Local:      unixfs.New(func() int64 { clock++; return clock }),
		HomeServer: "s2",
	})
	cases := []struct {
		name       string
		cr         proto.CustodianReply
		readOnlyOK bool
		want       []string
	}{
		{"no replicas", proto.CustodianReply{Custodian: "s0"}, true, []string{"s0"}},
		{"mutation ignores replicas",
			proto.CustodianReply{Custodian: "s0", Replicas: []string{"s1", "s2"}},
			false, []string{"s0"}},
		{"home replica first",
			proto.CustodianReply{Custodian: "s0", Replicas: []string{"s9", "s2", "s1"}},
			true, []string{"s2", "s0", "s1", "s9"}},
		{"home is custodian",
			proto.CustodianReply{Custodian: "s2", Replicas: []string{"s1", "s0"}},
			true, []string{"s2", "s0", "s1"}},
		{"home absent: custodian then sorted replicas",
			proto.CustodianReply{Custodian: "s5", Replicas: []string{"s4", "s3"}},
			true, []string{"s5", "s3", "s4"}},
		{"custodian duplicated in replica list",
			proto.CustodianReply{Custodian: "s0", Replicas: []string{"s0", "s1"}},
			true, []string{"s0", "s1"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := v.serverOrder(tc.cr, tc.readOnlyOK)
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("serverOrder = %v, want %v", got, tc.want)
			}
			if head := v.serverFor(tc.cr, tc.readOnlyOK); head != tc.want[0] {
				t.Fatalf("serverFor = %q, want %q", head, tc.want[0])
			}
		})
	}
}

// downConn wraps a test connection, failing calls while its server is
// marked down — the transport-level signature of a crashed custodian.
type downConn struct {
	inner  Conn
	server string
	down   map[string]bool
}

func (d *downConn) Call(p *sim.Proc, req rpc.Request) (rpc.Response, error) {
	if d.down[d.server] {
		return rpc.Response{}, rpc.ErrUnreachable
	}
	return d.inner.Call(p, req)
}

// newFailoverVenus is newVenus with a crash switch: servers in down refuse
// dials and fail established connections with ErrUnreachable.
func newFailoverVenus(c *testCell, home, user string, down map[string]bool) *Venus {
	local := unixfs.New(func() int64 { c.clock++; return c.clock })
	var v *Venus
	back := &wsBack{}
	cfg := Config{
		Mode:       c.mode,
		Machine:    "ws-" + user,
		Local:      local,
		HomeServer: home,
	}
	cfg.Connect = func(_ *sim.Proc, server string) (Conn, error) {
		if down[server] {
			return nil, rpc.ErrUnreachable
		}
		s, ok := c.servers[server]
		if !ok {
			return nil, fmt.Errorf("no such server %s", server)
		}
		return &downConn{inner: wsConn{srv: s, user: v.User, back: back}, server: server, down: down}, nil
	}
	v = New(cfg)
	back.v = v
	v.Login(user)
	return v
}

// TestReadFailoverToReplica crashes the custodian of a replicated read-only
// volume and asserts an uncached read is served by the surviving replica.
func TestReadFailoverToReplica(t *testing.T) {
	c := newTestCell(t, vice.Revised, "s0", "s1")
	vid := c.mkVolume("bin", "/bin", "operator", 0)
	op := c.newVenus("s0", "operator", nil)
	writeFile(t, op, "/bin/ls", "ls binary")
	writeFile(t, op, "/bin/cat", "cat binary")

	resp := c.servers["s0"].Dispatcher().Dispatch(rpc.Ctx{User: "operator"}, rpc.Request{
		Op: rpc.Op(proto.OpVolClone),
		Body: proto.Marshal(proto.VolCloneArgs{
			Volume: vid, Path: "/bin-ro", Replicas: []string{"s1"},
		}),
	})
	if !resp.OK() {
		t.Fatalf("clone: %v", proto.CodeToErr(resp.Code, string(resp.Body)))
	}

	down := map[string]bool{}
	v := newFailoverVenus(c, "s0", "satya", down)
	// Warm the location cache while the custodian is alive.
	if got := readFile(t, v, "/bin-ro/ls"); got != "ls binary" {
		t.Fatalf("pre-crash read: %q", got)
	}

	// Custodian down: an uncached file must be fetched from the replica.
	down["s0"] = true
	if got := readFile(t, v, "/bin-ro/cat"); got != "cat binary" {
		t.Fatalf("post-crash read: %q", got)
	}
	if st := v.Stats(); st.Failovers == 0 {
		t.Fatal("expected at least one failover to the replica")
	}
}

// TestMutationDoesNotFailOver pins the write-path rule: a mutation on a
// replicated volume's read-write parent never silently lands on a replica.
func TestMutationDoesNotFailOver(t *testing.T) {
	c := newTestCell(t, vice.Revised, "s0", "s1")
	c.mkVolume("u", "/u", "satya", 0)
	down := map[string]bool{}
	v := newFailoverVenus(c, "s0", "satya", down)
	writeFile(t, v, "/u/f", "before")
	down["s0"] = true
	f, err := v.Open(nil, "/u/f", FlagWrite)
	if err == nil {
		_, werr := f.Write([]byte("after"))
		cerr := f.Close(nil)
		if werr == nil && cerr == nil {
			t.Fatal("write succeeded with the only custodian down")
		}
	}
}
