package venus

import (
	"fmt"
	"math/rand"
	"testing"

	"itcfs/internal/vice"
)

// Property-based coverage for the cache manager: a seeded random mix of
// opens, reads, writes, and long-held handles, with the cache invariants
// re-checked after every operation. The invariants, from §5.3's revised
// space-limited cache:
//
//  1. accounting — v.bytes equals the sum of status sizes over data-bearing
//     entries, and every indexed entry is on the LRU list;
//  2. bounded — the byte limit is only ever exceeded when every data-bearing
//     entry is pinned (open or dirty), i.e. when eviction has nothing it is
//     allowed to evict;
//  3. pinned — an entry with an open handle is never evicted;
//  4. ordered — pool files appear on the LRU list in most-recently-opened
//     order (opens touch; closes and background stores do not reorder).

const propMaxBytes = 6000

// propShadow tracks, test-side, when each pool path was last opened.
type propShadow struct {
	seq    int64
	opened map[string]int64
}

func (s *propShadow) touch(path string) {
	s.seq++
	s.opened[path] = s.seq
}

func TestCacheInvariantsUnderRandomOps(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			c := newTestCell(t, vice.Revised, "s0")
			c.mkVolume("u", "/u", "satya", 0)
			v := c.newVenus("s0", "satya", func(cfg *Config) { cfg.MaxBytes = propMaxBytes })

			const poolSize = 16
			pool := make([]string, poolSize)
			inPool := make(map[string]bool, poolSize)
			for i := range pool {
				pool[i] = fmt.Sprintf("/u/p%02d", i)
				inPool[pool[i]] = true
			}

			r := rand.New(rand.NewSource(seed))
			shadow := &propShadow{opened: make(map[string]int64)}
			for _, path := range pool {
				writeFile(t, v, path, "seed")
				shadow.touch(path)
			}
			var held []*Handle
			heldPath := make(map[*Handle]string)

			for op := 0; op < 300; op++ {
				path := pool[r.Intn(poolSize)]
				switch k := r.Intn(10); {
				case k < 4: // rewrite a pool file
					h, err := v.Open(nil, path, FlagWrite|FlagCreate|FlagTrunc)
					if err != nil {
						t.Fatalf("op %d: open %s for write: %v", op, path, err)
					}
					shadow.touch(path)
					if _, err := h.Write(make([]byte, 200+r.Intn(1200))); err != nil {
						t.Fatalf("op %d: write %s: %v", op, path, err)
					}
					if err := h.Close(nil); err != nil {
						t.Fatalf("op %d: close %s: %v", op, path, err)
					}
				case k < 8: // read a pool file (a miss must refetch cleanly)
					h, err := v.Open(nil, path, FlagRead)
					if err != nil {
						t.Fatalf("op %d: open %s for read: %v", op, path, err)
					}
					shadow.touch(path)
					_ = h.Close(nil)
				case k < 9: // open a handle and hold it across later ops
					if len(held) < 4 {
						h, err := v.Open(nil, path, FlagRead)
						if err == nil {
							shadow.touch(path)
							held = append(held, h)
							heldPath[h] = path
						}
					}
				default: // release one held handle
					if len(held) > 0 {
						i := r.Intn(len(held))
						h := held[i]
						held = append(held[:i], held[i+1:]...)
						delete(heldPath, h)
						if err := h.Close(nil); err != nil {
							t.Fatalf("op %d: close held handle: %v", op, err)
						}
					}
				}
				checkCacheInvariants(t, v, op, held, heldPath, inPool, shadow)
			}
			for _, h := range held {
				_ = h.Close(nil)
			}
			if v.Stats().Evictions == 0 {
				t.Fatal("workload never triggered eviction; invariants 2-3 untested")
			}
		})
	}
}

// checkCacheInvariants asserts the four cache invariants listed atop this
// file. It takes v.mu itself, like any other external reader of the cache.
func checkCacheInvariants(t *testing.T, v *Venus, op int, held []*Handle,
	heldPath map[*Handle]string, inPool map[string]bool, shadow *propShadow) {
	t.Helper()
	v.mu.Lock()
	defer v.mu.Unlock()

	// (1) accounting: bytes is exactly the sum over data-bearing entries,
	// and both indexes only hold entries that are on the LRU list.
	var sum int64
	allPinned := true
	for el := v.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if e.cacheFile == "" {
			continue
		}
		sum += e.status.Size
		if e.open == 0 && !e.dirty {
			allPinned = false
		}
	}
	if sum != v.bytes {
		t.Fatalf("op %d: accounting drift: lru sums to %d bytes, counter says %d", op, sum, v.bytes)
	}
	for path, e := range v.byPath {
		if e.lruEl == nil {
			t.Fatalf("op %d: byPath[%s] entry is off the LRU list", op, path)
		}
	}
	for fid, e := range v.byFID {
		if e.lruEl == nil {
			t.Fatalf("op %d: byFID[%v] entry is off the LRU list", op, fid)
		}
	}

	// (2) bounded: over the limit only when eviction had no legal victim.
	if v.bytes > propMaxBytes && !allPinned {
		t.Fatalf("op %d: cache holds %d bytes (limit %d) with evictable entries remaining",
			op, v.bytes, propMaxBytes)
	}

	// (3) pinned: held handles' entries are alive, data-bearing, and counted.
	for _, h := range held {
		if h.e.lruEl == nil {
			t.Fatalf("op %d: entry for held handle %s was evicted", op, heldPath[h])
		}
		if h.e.cacheFile == "" {
			t.Fatalf("op %d: held handle %s lost its data file", op, heldPath[h])
		}
		if h.e.open <= 0 {
			t.Fatalf("op %d: held handle %s has open count %d", op, heldPath[h], h.e.open)
		}
	}

	// (4) ordered: pool files sit on the LRU list in most-recently-opened
	// order. Directory listings interleave, so compare pool files only.
	last := int64(-1) // sentinel: front of list, nothing seen yet
	for el := v.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if !inPool[e.path] {
			continue
		}
		seq, ok := shadow.opened[e.path]
		if !ok {
			t.Fatalf("op %d: cached pool file %s was never opened by the test", op, e.path)
		}
		if last >= 0 && seq > last {
			t.Fatalf("op %d: LRU order violated: %s (opened at %d) sits behind an entry opened at %d",
				op, e.path, seq, last)
		}
		last = seq
	}
}
