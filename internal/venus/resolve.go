package venus

import (
	"fmt"
	"sort"
	"time"

	"itcfs/internal/proto"
	"itcfs/internal/rpc"
	"itcfs/internal/sim"
	"itcfs/internal/trace"
	"itcfs/internal/unixfs"
	"itcfs/internal/vice"
)

// Routing: Venus caches custodianship information and uses it as hints
// (§3.1). A request sent to the wrong server comes back with the identity
// of the right one; Venus updates its hint and retries. Read-only-eligible
// operations on replicated volumes additionally fail over down a
// deterministic replica order when a server is unreachable.

const maxRedirects = 4

// failoverBackoff is the pause before trying the next replica after a
// server in the fallback order proved unreachable, doubling per hop. It
// spaces the retries of a workstation storm out without approaching the
// transport's own timeout scale.
const failoverBackoff = 5 * time.Millisecond

// conn returns (dialing if necessary) a connection to server.
func (v *Venus) conn(p *sim.Proc, server string) (Conn, error) {
	v.mu.Lock()
	c := v.conns[server]
	user := v.user
	v.mu.Unlock()
	if c != nil {
		return c, nil
	}
	if user == "" {
		return nil, fmt.Errorf("%w: no user logged in", proto.ErrAccess)
	}
	c, err := v.cfg.Connect(p, server)
	if err != nil {
		return nil, err
	}
	v.mu.Lock()
	v.conns[server] = c
	v.mu.Unlock()
	return c, nil
}

// locate finds the location entry covering path, consulting the cached
// hints first and the home cluster server on a miss.
func (v *Venus) locate(p *sim.Proc, path string) (proto.CustodianReply, error) {
	path = unixfs.Clean(path)
	v.mu.Lock()
	probe := path
	for {
		if cr, ok := v.pathLoc[probe]; ok {
			v.mu.Unlock()
			return cr, nil
		}
		if probe == "/" {
			break
		}
		probe = unixfs.Dir(probe)
	}
	v.mu.Unlock()

	v.mu.Lock()
	v.stats.OtherRPCs++
	v.mu.Unlock()
	c, err := v.conn(p, v.cfg.HomeServer)
	if err != nil {
		return proto.CustodianReply{}, err
	}
	resp, err := c.Call(p, rpc.Request{
		Op:   rpc.Op(proto.OpGetCustodian),
		Body: proto.Marshal(proto.CustodianArgs{Path: path}),
	})
	if err != nil {
		return proto.CustodianReply{}, err
	}
	if !resp.OK() {
		return proto.CustodianReply{}, proto.CodeToErr(resp.Code, string(resp.Body))
	}
	cr, err := proto.Unmarshal(resp.Body, proto.DecodeCustodianReply)
	if err != nil {
		return proto.CustodianReply{}, err
	}
	v.mu.Lock()
	v.pathLoc[cr.Prefix] = cr
	v.volLoc[cr.Volume] = cr
	v.mu.Unlock()
	return cr, nil
}

// serverOrder returns every server worth asking for a location entry, in
// preference order. Mutations and unreplicated volumes go only to the
// custodian. For a read-only-eligible operation on a replicated volume the
// order is deterministic and documented:
//
//  1. the home cluster server, when it carries a replica or is the
//     custodian ("localize if possible", §4);
//  2. the custodian (its copy is authoritative);
//  3. the remaining replicas in lexicographic order.
//
// Duplicates are dropped. callAt fails over down this list when a server is
// unreachable, so every workstation with the same home server walks the same
// order — deterministic under the simulator and pinned by unit test.
func (v *Venus) serverOrder(cr proto.CustodianReply, readOnlyOK bool) []string {
	if !readOnlyOK || len(cr.Replicas) == 0 {
		return []string{cr.Custodian}
	}
	order := make([]string, 0, len(cr.Replicas)+2)
	seen := func(s string) bool {
		for _, have := range order {
			if have == s {
				return true
			}
		}
		return false
	}
	if v.cfg.HomeServer == cr.Custodian {
		order = append(order, cr.Custodian)
	} else {
		for _, rep := range cr.Replicas {
			if rep == v.cfg.HomeServer {
				order = append(order, rep)
				break
			}
		}
	}
	if !seen(cr.Custodian) {
		order = append(order, cr.Custodian)
	}
	reps := append([]string(nil), cr.Replicas...)
	sort.Strings(reps)
	for _, rep := range reps {
		if rep != "" && !seen(rep) {
			order = append(order, rep)
		}
	}
	return order
}

// serverFor picks the preferred server for a location entry — the head of
// serverOrder.
func (v *Venus) serverFor(cr proto.CustodianReply, readOnlyOK bool) string {
	return v.serverOrder(cr, readOnlyOK)[0]
}

func readOp(op rpc.Op) bool {
	switch uint16(op) {
	case proto.OpFetch, proto.OpFetchStatus, proto.OpTestValid,
		proto.OpBulkTestValid, proto.OpGetACL:
		return true
	}
	return false
}

// callPath routes a request by pathname, following wrong-server hints.
func (v *Venus) callPath(p *sim.Proc, path string, req rpc.Request) (rpc.Response, error) {
	cr, err := v.locate(p, path)
	if err != nil {
		return rpc.Response{}, err
	}
	return v.callAt(p, v.serverOrder(cr, readOp(req.Op)), path, cr, req)
}

// locateVolume finds the location entry for a specific volume. Unlike
// locate, a cached path prefix is not good enough: a mount-point crossing
// means the path cache's entry names the wrong (parent) volume, so on a
// miss the home server is asked about the full path, whose answer names the
// deepest prefix and its replicas.
func (v *Venus) locateVolume(p *sim.Proc, vol uint32, pathHint string) (proto.CustodianReply, error) {
	v.mu.Lock()
	cr, ok := v.volLoc[vol]
	v.mu.Unlock()
	if ok {
		return cr, nil
	}
	v.mu.Lock()
	v.stats.OtherRPCs++
	v.mu.Unlock()
	c, err := v.conn(p, v.cfg.HomeServer)
	if err != nil {
		return proto.CustodianReply{}, err
	}
	resp, err := c.Call(p, rpc.Request{
		Op:   rpc.Op(proto.OpGetCustodian),
		Body: proto.Marshal(proto.CustodianArgs{Path: pathHint}),
	})
	if err != nil {
		return proto.CustodianReply{}, err
	}
	if !resp.OK() {
		return proto.CustodianReply{}, proto.CodeToErr(resp.Code, string(resp.Body))
	}
	cr, err = proto.Unmarshal(resp.Body, proto.DecodeCustodianReply)
	if err != nil {
		return proto.CustodianReply{}, err
	}
	v.mu.Lock()
	v.pathLoc[cr.Prefix] = cr
	v.volLoc[cr.Volume] = cr
	v.mu.Unlock()
	if cr.Volume != vol {
		// The hint path did not land in the volume (renamed mount?); use
		// the reply anyway — the wrong-server redirect corrects the rest.
		return cr, nil
	}
	return cr, nil
}

// callRef routes by FID when the reference has one, else by path. pathHint
// is used for location lookups of FID refs whose volume is unknown.
func (v *Venus) callRef(p *sim.Proc, ref proto.Ref, pathHint string, req rpc.Request) (rpc.Response, error) {
	if !ref.ByFID() {
		return v.callPath(p, ref.Path, req)
	}
	cr, err := v.locateVolume(p, ref.FID.Volume, pathHint)
	if err != nil {
		return rpc.Response{}, err
	}
	return v.callAt(p, v.serverOrder(cr, readOp(req.Op)), pathHint, cr, req)
}

// callAt performs the call against the first reachable server in servers,
// retrying at the hinted custodian on CodeWrongServer (stale hints are
// corrected, not fatal). Under ReconnectRetries, a transport failure drops
// the dead connection, redials and re-issues the call — this is how Venus
// survives a server that crashed and restarted, losing every connection it
// had accepted. When the current server stays unreachable after its redial
// budget, the call fails over to the next server in the fallback order
// (read-only replicas of the same volume), with a short doubling backoff
// between hops — a crashed custodian blacks nothing out as long as one
// replica survives.
func (v *Venus) callAt(p *sim.Proc, servers []string, path string, cr proto.CustodianReply, req rpc.Request) (rpc.Response, error) {
	redials, redirects := 0, 0
	si := 0
	server := servers[si]
	// failNext advances to the next fallback server, reporting whether one
	// exists.
	failNext := func(err error) bool {
		if si+1 >= len(servers) {
			return false
		}
		if p != nil {
			p.Sleep(failoverBackoff << uint(si))
		}
		si++
		v.mu.Lock()
		v.stats.Failovers++
		v.mu.Unlock()
		v.mFailover.Inc()
		if fl := v.cfg.Flight; fl != nil {
			fl.Log(trace.EventVenusFailover, v.cfg.Machine,
				fmt.Sprintf("%s unreachable (%v), trying replica %s", server, err, servers[si]))
		}
		server = servers[si]
		redials = 0
		return true
	}
	for {
		c, err := v.conn(p, server)
		if err != nil {
			if isRedialable(err) && redials < v.cfg.ReconnectRetries {
				redials++
				continue
			}
			if isTransportErr(err) && failNext(err) {
				continue
			}
			return rpc.Response{}, err
		}
		resp, err := c.Call(p, req)
		if err != nil {
			if isTransportErr(err) && redials < v.cfg.ReconnectRetries {
				// The connection is dead; a fresh one is outside the
				// transport's at-most-once window, so the re-issued request
				// may execute twice — mutating callers tolerate that.
				v.dropConn(server, c)
				redials++
				continue
			}
			if isTransportErr(err) {
				v.dropConn(server, c)
				if failNext(err) {
					continue
				}
			}
			return rpc.Response{}, err
		}
		if resp.Code != proto.CodeWrongServer {
			return resp, nil
		}
		// Stale hint: drop it and follow the custodian the server named.
		// The redirect target replaces the fallback order — the hinting
		// server is authoritative about who holds the volume now.
		hinted := string(resp.Body)
		v.mu.Lock()
		delete(v.pathLoc, cr.Prefix)
		delete(v.volLoc, cr.Volume)
		v.mu.Unlock()
		if hinted == "" || hinted == server {
			return resp, nil
		}
		if redirects++; redirects >= maxRedirects {
			return rpc.Response{}, fmt.Errorf("%w: too many custodian redirects for %s", proto.ErrInternal, path)
		}
		servers = []string{hinted}
		si, server, redials = 0, hinted, 0
	}
}

// dropConn discards a dead connection so the next call redials. The value
// is compared first: a concurrent caller may already have replaced it.
func (v *Venus) dropConn(server string, c Conn) {
	v.mu.Lock()
	if v.conns[server] == c {
		delete(v.conns, server)
	}
	v.stats.Reconnects++
	// The other end may be a restarted server with an empty callback table:
	// schedule a bulk revalidation sweep before the next open trusts a
	// promise (§3.3 recovery, batched).
	v.sweepPending = true
	v.mu.Unlock()
	if cl, ok := c.(interface{ Close() }); ok {
		cl.Close()
	}
}

// Resolve translates a Vice pathname to a FID by traversing cached
// directories — the revised implementation's client-side pathname walk
// (§5.3). Directories are fetched (and cached, with callback promises)
// like any other file.
func (v *Venus) Resolve(p *sim.Proc, path string) (proto.FID, error) {
	return v.resolve(p, path, true, 0)
}

func (v *Venus) resolve(p *sim.Proc, path string, followLast bool, depth int) (proto.FID, error) {
	if depth > 16 {
		return proto.FID{}, fmt.Errorf("%w: %s", proto.ErrLoop, path)
	}
	path = unixfs.Clean(path)
	cr, err := v.locate(p, path)
	if err != nil {
		return proto.FID{}, err
	}
	cur := proto.FID{Volume: cr.Volume, Vnode: 1, Uniq: 1} // volume root
	prefix := cr.Prefix
	components := splitComponents(path, prefix)
	// walked is the portion of path resolved so far — path is clean and the
	// components are subslices of it, so the hint for each level is a prefix
	// of path itself, sliced out by offset with no joining or allocation.
	end := 0
	if prefix != "/" {
		end = len(prefix)
	}
	for i, comp := range components {
		walked := prefix
		if end > 0 {
			walked = path[:end]
		}
		entries, err := v.dirEntries(p, cur, walked)
		if err != nil {
			return proto.FID{}, err
		}
		var found *proto.DirEntry
		for j := range entries {
			if entries[j].Name == comp {
				found = &entries[j]
				break
			}
		}
		if found == nil {
			return proto.FID{}, fmt.Errorf("%w: %s", proto.ErrNoEnt, path)
		}
		last := i == len(components)-1
		if found.Type == proto.TypeSymlink && (!last || followLast) {
			st, err := v.statFID(p, found.FID, path)
			if err != nil {
				return proto.FID{}, err
			}
			target := st.Target
			if len(target) == 0 || target[0] != '/' {
				target = unixfs.Join(walked, target)
			}
			rest := joinComponents(components[i+1:])
			return v.resolve(p, unixfs.Join(target, rest), followLast, depth+1)
		}
		cur = found.FID
		end += 1 + len(comp)
	}
	return cur, nil
}

// splitComponents splits the part of a clean path below prefix into its
// name components. The components are subslices of path, so splitting
// allocates only the component slice itself.
func splitComponents(path, prefix string) []string {
	rest := path
	if prefix != "/" {
		rest = path[len(prefix):]
	}
	n := 0
	for i := 0; i < len(rest); i++ {
		if rest[i] != '/' && (i == 0 || rest[i-1] == '/') {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for i := 0; i < len(rest); {
		for i < len(rest) && rest[i] == '/' {
			i++
		}
		start := i
		for i < len(rest) && rest[i] != '/' {
			i++
		}
		if i > start {
			out = append(out, rest[start:i])
		}
	}
	return out
}

func joinComponents(parts []string) string {
	out := ""
	for _, p := range parts {
		out += "/" + p
	}
	return out
}

// dirEntries returns a directory's listing, through the cache. Directory
// files participate in caching and callbacks exactly like plain files; the
// decoded listing is additionally memoized on the entry (resolution reads it
// per path component, and re-decoding the directory file each time dominated
// the client's allocation profile). Callers must not modify the result.
func (v *Venus) dirEntries(p *sim.Proc, dir proto.FID, path string) ([]proto.DirEntry, error) {
	v.mu.Lock()
	e := v.byFID[dir]
	fresh := e != nil && v.freshLocked(e, v.now(p))
	if fresh && e.cacheFile != "" && e.dirEnts != nil {
		v.touch(e)
		ents := e.dirEnts
		v.mu.Unlock()
		return ents, nil
	}
	v.mu.Unlock()
	if e != nil && e.cacheFile != "" && fresh {
		data, err := v.cfg.Local.ReadFile(e.cacheFile)
		if err == nil {
			ents, derr := proto.DecodeDirEntries(data)
			if derr != nil {
				return nil, derr
			}
			v.mu.Lock()
			v.touch(e)
			e.dirEnts = ents
			v.mu.Unlock()
			return ents, nil
		}
	}
	e, err := v.fetchEntry(p, proto.Ref{FID: dir}, path, 0)
	if err != nil {
		return nil, err
	}
	data, err := v.cfg.Local.ReadFile(e.cacheFile)
	if err != nil {
		return nil, err
	}
	ents, err := proto.DecodeDirEntries(data)
	if err != nil {
		return nil, err
	}
	v.mu.Lock()
	e.dirEnts = ents
	v.mu.Unlock()
	return ents, nil
}

// statFID fetches status by FID (symlink targets during resolution).
func (v *Venus) statFID(p *sim.Proc, fid proto.FID, pathHint string) (proto.Status, error) {
	v.mu.Lock()
	if e := v.byFID[fid]; e != nil && v.freshLocked(e, v.now(p)) {
		st := e.status
		v.mu.Unlock()
		return st, nil
	}
	v.stats.StatRPCs++
	v.mu.Unlock()
	resp, err := v.callRef(p, proto.Ref{FID: fid}, pathHint, rpc.Request{
		Op:   rpc.Op(proto.OpFetchStatus),
		Body: proto.Marshal(proto.StatusArgs{Ref: proto.Ref{FID: fid}}),
	})
	if err != nil {
		return proto.Status{}, err
	}
	if !resp.OK() {
		return proto.Status{}, proto.CodeToErr(resp.Code, string(resp.Body))
	}
	return proto.Unmarshal(resp.Body, proto.DecodeStatus)
}

// refFor builds the Ref for path in the current mode.
func (v *Venus) refFor(p *sim.Proc, path string) (proto.Ref, error) {
	if v.cfg.Mode == vice.Prototype {
		return proto.Ref{Path: unixfs.Clean(path)}, nil
	}
	fid, err := v.Resolve(p, path)
	if err != nil {
		return proto.Ref{}, err
	}
	return proto.Ref{FID: fid}, nil
}

// refForDir is refFor for a directory argument.
func (v *Venus) refForDir(p *sim.Proc, dir string) (proto.Ref, error) {
	return v.refFor(p, dir)
}

// Stat returns the Vice status of path. The prototype always asks the
// custodian — status caching was ineffective in it, which is why
// "GetFileStat" contributed 27% of all server calls (§5.2). The revised
// implementation answers from valid cached status under callback.
func (v *Venus) Stat(p *sim.Proc, path string) (proto.Status, error) {
	path = unixfs.Clean(path)
	if v.cfg.Mode == vice.Prototype {
		v.mu.Lock()
		v.stats.StatRPCs++
		v.mu.Unlock()
		resp, err := v.callPath(p, path, rpc.Request{
			Op:   rpc.Op(proto.OpFetchStatus),
			Body: proto.Marshal(proto.StatusArgs{Ref: proto.Ref{Path: path}}),
		})
		if err != nil {
			return proto.Status{}, err
		}
		if !resp.OK() {
			return proto.Status{}, proto.CodeToErr(resp.Code, string(resp.Body))
		}
		return proto.Unmarshal(resp.Body, proto.DecodeStatus)
	}
	fid, err := v.Resolve(p, path)
	if err != nil {
		return proto.Status{}, err
	}
	return v.statFID(p, fid, path)
}

// ReadDir lists a Vice directory.
func (v *Venus) ReadDir(p *sim.Proc, path string) ([]proto.DirEntry, error) {
	path = unixfs.Clean(path)
	if v.cfg.Mode == vice.Revised {
		fid, err := v.Resolve(p, path)
		if err != nil {
			return nil, err
		}
		return v.dirEntries(p, fid, path)
	}
	// Prototype: fetch the directory like a file, through the cache with
	// check-on-open validation.
	e, err := v.lookupPrototype(p, path, 0)
	if err != nil {
		return nil, err
	}
	data, err := v.cfg.Local.ReadFile(e.cacheFile)
	if err != nil {
		return nil, err
	}
	return proto.DecodeDirEntries(data)
}

// dirPatch edits a cached directory listing after a successful mutation.
// It receives the decoded entries and the RPC reply (whose body carries the
// new object's status for create-like ops) and returns the updated listing.
type dirPatch func(entries []proto.DirEntry, resp rpc.Response) []proto.DirEntry

// dirCall performs a directory-mutating op. In revised mode the cached
// listing is patched in place — the server does not break the mutator's own
// callback, and refetching a directory it just changed would waste a
// whole-file transfer per mutation. The prototype cannot patch (its
// validation compares versions with the custodian, which incremented), so
// there the stale listing is dropped.
func (v *Venus) dirCall(p *sim.Proc, dir string, op uint16, body []byte, patch dirPatch) (rpc.Response, error) {
	v.mu.Lock()
	v.stats.OtherRPCs++
	v.mu.Unlock()
	ref, err := v.refForDir(p, dir)
	if err != nil {
		return rpc.Response{}, err
	}
	resp, err := v.callRef(p, ref, dir, rpc.Request{Op: rpc.Op(op), Body: body})
	if err != nil {
		return resp, err
	}
	if !resp.OK() {
		// With ReconnectRetries enabled a call may be re-issued on a fresh
		// connection, outside the transport's at-most-once window, after an
		// earlier attempt already executed (its reply died with the server).
		// A mutation that reports "already done" — Exist on an add, NoEnt on
		// a delete — is then indistinguishable from that re-execution, so
		// treat it as success with at-least-once semantics. The cached
		// listing cannot be patched (the reply carries no status), so fall
		// through to the drop-and-refetch path below.
		if v.cfg.ReconnectRetries > 0 && mutationAlreadyDone(op, resp.Code) {
			patch = nil
		} else {
			return resp, proto.CodeToErr(resp.Code, string(resp.Body))
		}
	}
	if v.cfg.Mode == vice.Revised && patch != nil && v.patchDir(ref.FID, patch, resp) {
		return resp, nil
	}
	v.dropDir(dir)
	if ref.ByFID() {
		v.mu.Lock()
		if e := v.byFID[ref.FID]; e != nil {
			v.removeLocked(e)
		}
		v.mu.Unlock()
	}
	return resp, nil
}

// mutationAlreadyDone reports whether a failed directory mutation left the
// name space in exactly the state the caller asked for — the signature of a
// reconnect re-executing a call whose first attempt succeeded.
func mutationAlreadyDone(op uint16, code uint16) bool {
	switch op {
	case proto.OpMakeDir, proto.OpSymlink, proto.OpLink:
		return code == proto.CodeExist
	case proto.OpRemove, proto.OpRemoveDir:
		return code == proto.CodeNoEnt
	}
	return false
}

// patchDir applies a patch to the cached listing of dir, reporting whether
// it succeeded (false falls back to dropping the cache).
func (v *Venus) patchDir(dir proto.FID, patch dirPatch, resp rpc.Response) bool {
	if dir.IsZero() {
		return false
	}
	v.mu.Lock()
	e := v.byFID[dir]
	v.mu.Unlock()
	if e == nil || e.cacheFile == "" || !e.valid {
		return false
	}
	data, err := v.cfg.Local.ReadFile(e.cacheFile)
	if err != nil {
		return false
	}
	entries, err := proto.DecodeDirEntries(data)
	if err != nil {
		return false
	}
	patched := patch(entries, resp)
	updated := proto.EncodeDirEntries(patched)
	if err := v.cfg.Local.WriteFile(e.cacheFile, updated, 0o600, "venus"); err != nil {
		return false
	}
	v.mu.Lock()
	v.bytes += int64(len(updated)) - e.status.Size
	e.status.Size = int64(len(updated))
	e.dirEnts = patched // memoized listing follows the patched file
	v.evictLocked()     // the listing may have grown past the cache limit
	v.mu.Unlock()
	return true
}

// patchAdd appends an entry whose FID comes from the reply status.
func patchAdd(name string, typ proto.FileType) dirPatch {
	return func(entries []proto.DirEntry, resp rpc.Response) []proto.DirEntry {
		st, err := proto.Unmarshal(resp.Body, proto.DecodeStatus)
		if err != nil {
			return entries
		}
		return append(entries, proto.DirEntry{Name: name, FID: st.FID, Type: typ})
	}
}

// patchDel removes an entry by name.
func patchDel(name string) dirPatch {
	return func(entries []proto.DirEntry, _ rpc.Response) []proto.DirEntry {
		out := entries[:0]
		for _, e := range entries {
			if e.Name != name {
				out = append(out, e)
			}
		}
		return out
	}
}

// Mkdir creates a directory in the shared space.
func (v *Venus) Mkdir(p *sim.Proc, path string, mode uint16) error {
	dir, name := unixfs.Dir(path), unixfs.Base(path)
	ref, err := v.refForDir(p, dir)
	if err != nil {
		return err
	}
	_, err = v.dirCall(p, dir, proto.OpMakeDir,
		proto.Marshal(proto.NameArgs{Dir: ref, Name: name, Mode: mode}),
		patchAdd(name, proto.TypeDir))
	return err
}

// Remove unlinks a file or symlink.
func (v *Venus) Remove(p *sim.Proc, path string) error {
	path = unixfs.Clean(path)
	dir, name := unixfs.Dir(path), unixfs.Base(path)
	ref, err := v.refForDir(p, dir)
	if err != nil {
		return err
	}
	if _, err := v.dirCall(p, dir, proto.OpRemove,
		proto.Marshal(proto.NameArgs{Dir: ref, Name: name}), patchDel(name)); err != nil {
		return err
	}
	v.mu.Lock()
	if e := v.byPath[path]; e != nil {
		v.removeLocked(e)
	}
	v.mu.Unlock()
	return nil
}

// RemoveDir removes an empty directory.
func (v *Venus) RemoveDir(p *sim.Proc, path string) error {
	path = unixfs.Clean(path)
	dir, name := unixfs.Dir(path), unixfs.Base(path)
	ref, err := v.refForDir(p, dir)
	if err != nil {
		return err
	}
	if _, err := v.dirCall(p, dir, proto.OpRemoveDir,
		proto.Marshal(proto.NameArgs{Dir: ref, Name: name}), patchDel(name)); err != nil {
		return err
	}
	v.dropDir(path)
	return nil
}

// Rename moves a file or subtree within one volume.
func (v *Venus) Rename(p *sim.Proc, from, to string) error {
	from, to = unixfs.Clean(from), unixfs.Clean(to)
	fromDir, fromName := unixfs.Dir(from), unixfs.Base(from)
	toDir, toName := unixfs.Dir(to), unixfs.Base(to)
	fromRef, err := v.refForDir(p, fromDir)
	if err != nil {
		return err
	}
	toRef, err := v.refForDir(p, toDir)
	if err != nil {
		return err
	}
	// Within one directory the cached listing can be edited in place; a
	// cross-directory move patches the source and drops the target.
	var patch dirPatch
	if fromDir == toDir {
		patch = func(entries []proto.DirEntry, _ rpc.Response) []proto.DirEntry {
			if fromName == toName {
				return entries // identity rename: the server no-opped too
			}
			// Build a fresh slice: compacting in place would alias the
			// moved entry with entries being shifted over it.
			out := make([]proto.DirEntry, 0, len(entries))
			var moved proto.DirEntry
			found := false
			for _, e := range entries {
				switch e.Name {
				case toName: // replaced by the rename
				case fromName:
					moved = e
					found = true
				default:
					out = append(out, e)
				}
			}
			if found {
				moved.Name = toName
				out = append(out, moved)
			}
			return out
		}
	} else {
		patch = patchDel(fromName)
	}
	_, err = v.dirCall(p, fromDir, proto.OpRename, proto.Marshal(proto.RenameArgs{
		FromDir: fromRef, FromName: fromName, ToDir: toRef, ToName: toName,
	}), patch)
	if err != nil {
		return err
	}
	if fromDir != toDir {
		v.dropDir(toDir)
		if toRef.ByFID() {
			v.mu.Lock()
			if e := v.byFID[toRef.FID]; e != nil {
				v.removeLocked(e)
			}
			v.mu.Unlock()
		}
	}
	v.mu.Lock()
	if e := v.byPath[from]; e != nil {
		v.removeLocked(e)
	}
	if e := v.byPath[to]; e != nil {
		v.removeLocked(e)
	}
	v.mu.Unlock()
	return nil
}

// Symlink creates a symbolic link in the shared space.
func (v *Venus) Symlink(p *sim.Proc, target, path string) error {
	dir, name := unixfs.Dir(path), unixfs.Base(path)
	ref, err := v.refForDir(p, dir)
	if err != nil {
		return err
	}
	_, err = v.dirCall(p, dir, proto.OpSymlink,
		proto.Marshal(proto.SymlinkArgs{Dir: ref, Name: name, Target: target}),
		patchAdd(name, proto.TypeSymlink))
	return err
}

// Link creates a hard link within one volume.
func (v *Venus) Link(p *sim.Proc, oldPath, newPath string) error {
	dir, name := unixfs.Dir(newPath), unixfs.Base(newPath)
	dirRef, err := v.refForDir(p, dir)
	if err != nil {
		return err
	}
	oldRef, err := v.refFor(p, oldPath)
	if err != nil {
		return err
	}
	_, err = v.dirCall(p, dir, proto.OpLink,
		proto.Marshal(proto.LinkArgs{Dir: dirRef, Name: name, Target: oldRef}),
		func(entries []proto.DirEntry, _ rpc.Response) []proto.DirEntry {
			if !oldRef.ByFID() {
				return entries
			}
			return append(entries, proto.DirEntry{Name: name, FID: oldRef.FID, Type: proto.TypeFile})
		})
	return err
}

// SetMode changes per-file protection bits.
func (v *Venus) SetMode(p *sim.Proc, path string, mode uint16) error {
	ref, err := v.refFor(p, path)
	if err != nil {
		return err
	}
	v.mu.Lock()
	v.stats.OtherRPCs++
	v.mu.Unlock()
	resp, err := v.callRef(p, ref, path, rpc.Request{
		Op:   rpc.Op(proto.OpSetStatus),
		Body: proto.Marshal(proto.SetStatusArgs{Ref: ref, SetMode: true, Mode: mode}),
	})
	if err != nil {
		return err
	}
	if !resp.OK() {
		return proto.CodeToErr(resp.Code, string(resp.Body))
	}
	st, err := proto.Unmarshal(resp.Body, proto.DecodeStatus)
	if err != nil {
		return err
	}
	v.mu.Lock()
	if e := v.byFID[st.FID]; e != nil {
		e.status = st
	} else if e := v.byPath[unixfs.Clean(path)]; e != nil {
		e.status = st
	}
	v.mu.Unlock()
	return nil
}

// GetACL fetches the access list of a directory.
func (v *Venus) GetACL(p *sim.Proc, dir string) ([]byte, error) {
	ref, err := v.refForDir(p, dir)
	if err != nil {
		return nil, err
	}
	v.mu.Lock()
	v.stats.OtherRPCs++
	v.mu.Unlock()
	resp, err := v.callRef(p, ref, dir, rpc.Request{
		Op:   rpc.Op(proto.OpGetACL),
		Body: proto.Marshal(proto.ACLArgs{Dir: ref}),
	})
	if err != nil {
		return nil, err
	}
	if !resp.OK() {
		return nil, proto.CodeToErr(resp.Code, string(resp.Body))
	}
	return resp.Body, nil
}

// SetACL replaces the access list of a directory.
func (v *Venus) SetACL(p *sim.Proc, dir string, acl []byte) error {
	ref, err := v.refForDir(p, dir)
	if err != nil {
		return err
	}
	v.mu.Lock()
	v.stats.OtherRPCs++
	v.mu.Unlock()
	resp, err := v.callRef(p, ref, dir, rpc.Request{
		Op:   rpc.Op(proto.OpSetACL),
		Body: proto.Marshal(proto.ACLArgs{Dir: ref, ACL: acl}),
	})
	if err != nil {
		return err
	}
	if !resp.OK() {
		return proto.CodeToErr(resp.Code, string(resp.Body))
	}
	return nil
}

// Lock acquires an advisory lock.
func (v *Venus) Lock(p *sim.Proc, path string, exclusive bool) error {
	ref, err := v.refFor(p, path)
	if err != nil {
		return err
	}
	v.mu.Lock()
	v.stats.OtherRPCs++
	v.mu.Unlock()
	resp, err := v.callRef(p, ref, path, rpc.Request{
		Op:   rpc.Op(proto.OpSetLock),
		Body: proto.Marshal(proto.LockArgs{Ref: ref, Exclusive: exclusive}),
	})
	if err != nil {
		return err
	}
	if !resp.OK() {
		return proto.CodeToErr(resp.Code, string(resp.Body))
	}
	return nil
}

// Unlock releases an advisory lock.
func (v *Venus) Unlock(p *sim.Proc, path string) error {
	ref, err := v.refFor(p, path)
	if err != nil {
		return err
	}
	v.mu.Lock()
	v.stats.OtherRPCs++
	v.mu.Unlock()
	resp, err := v.callRef(p, ref, path, rpc.Request{
		Op:   rpc.Op(proto.OpReleaseLock),
		Body: proto.Marshal(proto.LockArgs{Ref: ref}),
	})
	if err != nil {
		return err
	}
	if !resp.OK() {
		return proto.CodeToErr(resp.Code, string(resp.Body))
	}
	return nil
}
