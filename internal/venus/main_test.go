package venus

import (
	"testing"

	"itcfs/internal/leakcheck"
)

// TestMain fails the package if any test leaves a goroutine running —
// a cache manager, prober or TCP peer that outlives its Close.
func TestMain(m *testing.M) { leakcheck.Main(m) }
