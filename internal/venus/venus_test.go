package venus

import (
	"errors"
	"fmt"
	"testing"

	"itcfs/internal/prot"
	"itcfs/internal/proto"
	"itcfs/internal/rpc"
	"itcfs/internal/secure"
	"itcfs/internal/sim"
	"itcfs/internal/unixfs"
	"itcfs/internal/vice"
	"itcfs/internal/volume"
)

// testCell is an in-process cell: vice servers plus helper wiring that lets
// a Venus connect without a network (the rpc transports have their own
// tests; here we exercise Venus<->Vice logic).
type testCell struct {
	t       *testing.T
	mode    vice.Mode
	servers map[string]*vice.Server
	nextVol uint32
	clock   int64
}

func newTestCell(t *testing.T, mode vice.Mode, names ...string) *testCell {
	t.Helper()
	c := &testCell{t: t, mode: mode, servers: make(map[string]*vice.Server), nextVol: 1}
	alloc := func() uint32 { c.nextVol++; return c.nextVol }
	clk := func() int64 { c.clock++; return c.clock }

	base := prot.NewDB()
	for _, m := range []prot.Mutation{
		{Kind: prot.MutAddUser, Name: "satya", Key: secure.DeriveKey("satya", "pw")},
		{Kind: prot.MutAddUser, Name: "howard", Key: secure.DeriveKey("howard", "pw")},
		{Kind: prot.MutAddUser, Name: "operator", Key: secure.DeriveKey("operator", "pw")},
		{Kind: prot.MutAddGroup, Name: vice.AdminGroup, Owner: "operator"},
		{Kind: prot.MutAddMember, Name: vice.AdminGroup, Member: "operator"},
	} {
		if err := base.Apply(m); err != nil {
			t.Fatal(err)
		}
	}
	first := true
	for _, name := range names {
		db := prot.NewDB()
		if err := db.LoadSnapshot(base.Snapshot()); err != nil {
			t.Fatal(err)
		}
		s := vice.New(vice.Config{
			Name: name, Mode: mode, DB: db, Loc: vice.NewLocDB(),
			Clock: clk, ProtAuthority: first, AllocVolID: alloc,
		})
		c.servers[name] = s
		first = false
	}
	for a, sa := range c.servers {
		for b, sb := range c.servers {
			if a != b {
				sa.AddPeer(b, peerCaller{sb})
			}
		}
	}
	// Root volume on the first name given.
	rootACL := prot.NewACL()
	rootACL.Grant(prot.AnyUser, prot.RightLookup|prot.RightRead)
	rootACL.Grant(vice.AdminGroup, prot.RightsAll)
	root := volume.New(1, "root", rootACL, 0, "operator", clk)
	c.servers[names[0]].AddVolume(root)
	le := proto.LocEntry{Prefix: "/", Volume: 1, Custodian: names[0]}
	for _, s := range c.servers {
		s.Loc().Install([]proto.LocEntry{le}, nil)
	}
	return c
}

// peerCaller wires servers together.
type peerCaller struct{ srv *vice.Server }

func (pc peerCaller) Call(p *sim.Proc, req rpc.Request) (rpc.Response, error) {
	return pc.srv.Dispatcher().Dispatch(rpc.Ctx{User: vice.ServerUser, Proc: p}, req), nil
}

// wsConn is a workstation's connection to one server, carrying the
// workstation's callback channel.
type wsConn struct {
	srv  *vice.Server
	user func() string
	back rpc.Backchannel
}

func (c wsConn) Call(p *sim.Proc, req rpc.Request) (rpc.Response, error) {
	return c.srv.Dispatcher().Dispatch(rpc.Ctx{User: c.user(), Back: c.back, Proc: p}, req), nil
}

// wsBack delivers callbacks into a Venus.
type wsBack struct{ v *Venus }

func (b *wsBack) CallBack(_ *sim.Proc, req rpc.Request) (rpc.Response, error) {
	return b.v.HandleCallbackBreak(rpc.Ctx{}, req), nil
}
func (b *wsBack) BackUser() string { return b.v.User() }

// newVenus builds a Venus homed on the named server.
func (c *testCell) newVenus(home string, user string, tweak func(*Config)) *Venus {
	local := unixfs.New(func() int64 { c.clock++; return c.clock })
	cfg := Config{
		Mode:       c.mode,
		Machine:    "ws-" + user,
		Local:      local,
		HomeServer: home,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	var v *Venus
	back := &wsBack{}
	cfg.Connect = func(_ *sim.Proc, server string) (Conn, error) {
		s, ok := c.servers[server]
		if !ok {
			return nil, fmt.Errorf("no such server %s", server)
		}
		return wsConn{srv: s, user: v.User, back: back}, nil
	}
	v = New(cfg)
	back.v = v
	v.Login(user)
	return v
}

// mkVolume creates a volume at path (ancestors created on demand).
func (c *testCell) mkVolume(name, path, owner string, quota int64) uint32 {
	c.t.Helper()
	op := c.newVenus(firstName(c), "operator", nil)
	// Create ancestors.
	dir := unixfs.Dir(path)
	var build func(d string)
	build = func(d string) {
		if d == "/" {
			return
		}
		build(unixfs.Dir(d))
		if err := op.Mkdir(nil, d, 0o755); err != nil && !errors.Is(err, proto.ErrExist) {
			c.t.Fatalf("mkdir %s: %v", d, err)
		}
	}
	build(dir)
	resp, err := op.callPath(nil, dir, rpc.Request{
		Op:   rpc.Op(proto.OpVolCreate),
		Body: proto.Marshal(proto.VolCreateArgs{Name: name, Path: path, Quota: quota, Owner: owner}),
	})
	if err != nil || !resp.OK() {
		c.t.Fatalf("VolCreate %s: %v %d %s", path, err, resp.Code, resp.Body)
	}
	vs, err := proto.Unmarshal(resp.Body, proto.DecodeVolStatusReply)
	if err != nil {
		c.t.Fatal(err)
	}
	return vs.Volume
}

func firstName(c *testCell) string {
	for n := range c.servers {
		if s := c.servers[n]; s != nil {
			// Deterministic: pick the protection authority (first created).
			if _, ok := s.Volume(1); ok {
				return n
			}
		}
	}
	for n := range c.servers {
		return n
	}
	return ""
}

func writeFile(t *testing.T, v *Venus, path, contents string) {
	t.Helper()
	h, err := v.Open(nil, path, FlagWrite|FlagCreate|FlagTrunc)
	if err != nil {
		t.Fatalf("open %s for write: %v", path, err)
	}
	if _, err := h.Write([]byte(contents)); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	if err := h.Close(nil); err != nil {
		t.Fatalf("close %s: %v", path, err)
	}
}

func readFile(t *testing.T, v *Venus, path string) string {
	t.Helper()
	h, err := v.Open(nil, path, FlagRead)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer h.Close(nil)
	buf := make([]byte, 1<<16)
	n, err := h.ReadAt(buf, 0)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return string(buf[:n])
}

func TestWriteThenReadBack(t *testing.T) {
	for _, mode := range []vice.Mode{vice.Prototype, vice.Revised} {
		t.Run(mode.String(), func(t *testing.T) {
			c := newTestCell(t, mode, "s0")
			c.mkVolume("u.satya", "/usr/satya", "satya", 0)
			v := c.newVenus("s0", "satya", nil)
			writeFile(t, v, "/usr/satya/notes.txt", "whole-file caching works")
			if got := readFile(t, v, "/usr/satya/notes.txt"); got != "whole-file caching works" {
				t.Fatalf("read back %q", got)
			}
		})
	}
}

func TestSharingAcrossWorkstations(t *testing.T) {
	for _, mode := range []vice.Mode{vice.Prototype, vice.Revised} {
		t.Run(mode.String(), func(t *testing.T) {
			c := newTestCell(t, mode, "s0")
			c.mkVolume("proj", "/proj", "satya", 0)
			op := c.newVenus("s0", "operator", nil)
			acl := prot.NewACL()
			acl.Grant("satya", prot.RightsAll)
			acl.Grant("howard", prot.RightsAll)
			if err := op.SetACL(nil, "/proj", proto.ACLEncode(acl)); err != nil {
				t.Fatal(err)
			}
			vs := c.newVenus("s0", "satya", nil)
			vh := c.newVenus("s0", "howard", nil)
			writeFile(t, vs, "/proj/plan", "v1 by satya")
			if got := readFile(t, vh, "/proj/plan"); got != "v1 by satya" {
				t.Fatalf("howard sees %q", got)
			}
			// howard updates; satya sees the change on next open
			// (check-on-open in prototype, callback break in revised).
			writeFile(t, vh, "/proj/plan", "v2 by howard")
			if got := readFile(t, vs, "/proj/plan"); got != "v2 by howard" {
				t.Fatalf("satya sees %q", got)
			}
		})
	}
}

func TestPrototypeValidatesEveryOpen(t *testing.T) {
	c := newTestCell(t, vice.Prototype, "s0")
	c.mkVolume("u", "/u", "satya", 0)
	v := c.newVenus("s0", "satya", nil)
	writeFile(t, v, "/u/f", "data")
	v.ResetStats()
	for i := 0; i < 5; i++ {
		readFile(t, v, "/u/f")
	}
	st := v.Stats()
	if st.Validations != 5 {
		t.Fatalf("validations = %d, want 5", st.Validations)
	}
	if st.Hits != 5 || st.Fetches != 0 {
		t.Fatalf("hits = %d fetches = %d", st.Hits, st.Fetches)
	}
}

func TestRevisedOpensAreFreeUntilBreak(t *testing.T) {
	c := newTestCell(t, vice.Revised, "s0")
	c.mkVolume("u", "/u", "satya", 0)
	op := c.newVenus("s0", "operator", nil)
	acl := prot.NewACL()
	acl.Grant("satya", prot.RightsAll)
	acl.Grant("howard", prot.RightsAll)
	if err := op.SetACL(nil, "/u", proto.ACLEncode(acl)); err != nil {
		t.Fatal(err)
	}
	v := c.newVenus("s0", "satya", nil)
	writeFile(t, v, "/u/f", "v1")
	readFile(t, v, "/u/f") // warm: caches /u directory and the file
	v.ResetStats()
	for i := 0; i < 5; i++ {
		readFile(t, v, "/u/f")
	}
	st := v.Stats()
	if st.Validations != 0 || st.Fetches != 0 || st.Hits != 5 {
		t.Fatalf("revised warm opens: %+v", st)
	}
	// Another workstation stores a new version: the callback fires and the
	// next open fetches.
	w := c.newVenus("s0", "howard", nil)
	writeFile(t, w, "/u/f", "v2")
	if got := readFile(t, v, "/u/f"); got != "v2" {
		t.Fatalf("after break: %q", got)
	}
	st = v.Stats()
	if st.CallbackBreaks == 0 {
		t.Fatal("no callback break recorded")
	}
	if st.Fetches == 0 {
		t.Fatal("no refetch after break")
	}
}

func TestPrototypeCountLimitedEviction(t *testing.T) {
	c := newTestCell(t, vice.Prototype, "s0")
	c.mkVolume("u", "/u", "satya", 0)
	v := c.newVenus("s0", "satya", func(cfg *Config) { cfg.MaxFiles = 3 })
	for i := 0; i < 6; i++ {
		writeFile(t, v, fmt.Sprintf("/u/f%d", i), "x")
	}
	files, _ := v.CacheUsage()
	if files > 3 {
		t.Fatalf("cache holds %d entries, limit 3", files)
	}
	if v.Stats().Evictions == 0 {
		t.Fatal("no evictions")
	}
}

func TestRevisedSpaceLimitedEviction(t *testing.T) {
	c := newTestCell(t, vice.Revised, "s0")
	c.mkVolume("u", "/u", "satya", 0)
	v := c.newVenus("s0", "satya", func(cfg *Config) { cfg.MaxBytes = 3000 })
	for i := 0; i < 6; i++ {
		writeFile(t, v, fmt.Sprintf("/u/f%d", i), string(make([]byte, 1000)))
	}
	_, bytes := v.CacheUsage()
	if bytes > 3000 {
		t.Fatalf("cache holds %d bytes, limit 3000", bytes)
	}
	if v.Stats().Evictions == 0 {
		t.Fatal("no evictions")
	}
}

func TestLRUKeepsHotFile(t *testing.T) {
	c := newTestCell(t, vice.Prototype, "s0")
	c.mkVolume("u", "/u", "satya", 0)
	v := c.newVenus("s0", "satya", func(cfg *Config) { cfg.MaxFiles = 3 })
	writeFile(t, v, "/u/hot", "hot")
	for i := 0; i < 5; i++ {
		writeFile(t, v, fmt.Sprintf("/u/cold%d", i), "cold")
		readFile(t, v, "/u/hot") // keep it warm
	}
	v.ResetStats()
	readFile(t, v, "/u/hot")
	if v.Stats().Fetches != 0 {
		t.Fatal("hot file was evicted despite recency")
	}
}

func TestStatModes(t *testing.T) {
	for _, mode := range []vice.Mode{vice.Prototype, vice.Revised} {
		t.Run(mode.String(), func(t *testing.T) {
			c := newTestCell(t, mode, "s0")
			c.mkVolume("u", "/u", "satya", 0)
			v := c.newVenus("s0", "satya", nil)
			writeFile(t, v, "/u/f", "hello")
			st, err := v.Stat(nil, "/u/f")
			if err != nil {
				t.Fatal(err)
			}
			if st.Size != 5 || st.Type != proto.TypeFile || st.Owner != "satya" {
				t.Fatalf("stat = %+v", st)
			}
			if _, err := v.Stat(nil, "/u/ghost"); !errors.Is(err, proto.ErrNoEnt) {
				t.Fatalf("stat ghost: %v", err)
			}
		})
	}
}

func TestReadDirAndMkdirRemove(t *testing.T) {
	for _, mode := range []vice.Mode{vice.Prototype, vice.Revised} {
		t.Run(mode.String(), func(t *testing.T) {
			c := newTestCell(t, mode, "s0")
			c.mkVolume("u", "/u", "satya", 0)
			v := c.newVenus("s0", "satya", nil)
			if err := v.Mkdir(nil, "/u/src", 0o755); err != nil {
				t.Fatal(err)
			}
			writeFile(t, v, "/u/src/a.c", "a")
			writeFile(t, v, "/u/src/b.c", "b")
			entries, err := v.ReadDir(nil, "/u/src")
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != 2 || entries[0].Name != "a.c" || entries[1].Name != "b.c" {
				t.Fatalf("entries = %+v", entries)
			}
			if err := v.Remove(nil, "/u/src/a.c"); err != nil {
				t.Fatal(err)
			}
			entries, _ = v.ReadDir(nil, "/u/src")
			if len(entries) != 1 {
				t.Fatalf("after remove: %+v", entries)
			}
			if err := v.Remove(nil, "/u/src/b.c"); err != nil {
				t.Fatal(err)
			}
			if err := v.RemoveDir(nil, "/u/src"); err != nil {
				t.Fatal(err)
			}
			if _, err := v.Stat(nil, "/u/src"); !errors.Is(err, proto.ErrNoEnt) {
				t.Fatalf("stat removed dir: %v", err)
			}
		})
	}
}

func TestRenameThroughVenus(t *testing.T) {
	for _, mode := range []vice.Mode{vice.Prototype, vice.Revised} {
		t.Run(mode.String(), func(t *testing.T) {
			c := newTestCell(t, mode, "s0")
			c.mkVolume("u", "/u", "satya", 0)
			v := c.newVenus("s0", "satya", nil)
			writeFile(t, v, "/u/old", "payload")
			if err := v.Rename(nil, "/u/old", "/u/new"); err != nil {
				t.Fatal(err)
			}
			if got := readFile(t, v, "/u/new"); got != "payload" {
				t.Fatalf("renamed contents = %q", got)
			}
			if _, err := v.Stat(nil, "/u/old"); !errors.Is(err, proto.ErrNoEnt) {
				t.Fatalf("old name: %v", err)
			}
		})
	}
}

func TestSymlinkResolutionClientSide(t *testing.T) {
	c := newTestCell(t, vice.Revised, "s0")
	c.mkVolume("u", "/u", "satya", 0)
	v := c.newVenus("s0", "satya", nil)
	writeFile(t, v, "/u/real", "the real file")
	if err := v.Symlink(nil, "/u/real", "/u/alias"); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, v, "/u/alias"); got != "the real file" {
		t.Fatalf("through symlink: %q", got)
	}
}

func TestAccessDeniedSurfaces(t *testing.T) {
	c := newTestCell(t, vice.Prototype, "s0")
	c.mkVolume("u", "/u", "satya", 0)
	op := c.newVenus("s0", "operator", nil)
	acl := prot.NewACL()
	acl.Grant("satya", prot.RightsAll)
	if err := op.SetACL(nil, "/u", proto.ACLEncode(acl)); err != nil {
		t.Fatal(err)
	}
	v := c.newVenus("s0", "satya", nil)
	writeFile(t, v, "/u/private", "secret")
	h := c.newVenus("s0", "howard", nil)
	if _, err := h.Open(nil, "/u/private", FlagRead); !errors.Is(err, proto.ErrAccess) {
		t.Fatalf("err = %v, want ErrAccess", err)
	}
}

func TestMobilityAcrossClusters(t *testing.T) {
	// A user moves to a workstation homed on a different server. The cache
	// warms up there and files remain reachable — the custodian did not
	// change, only the access point (§3.1, §3.2).
	for _, mode := range []vice.Mode{vice.Prototype, vice.Revised} {
		t.Run(mode.String(), func(t *testing.T) {
			c := newTestCell(t, mode, "s0", "s1")
			c.mkVolume("u.satya", "/usr/satya", "satya", 0)
			home := c.newVenus("s0", "satya", nil)
			writeFile(t, home, "/usr/satya/thesis", "draft 1")
			// Same user at a workstation in cluster 1.
			away := c.newVenus("s1", "satya", nil)
			if got := readFile(t, away, "/usr/satya/thesis"); got != "draft 1" {
				t.Fatalf("remote read %q", got)
			}
			writeFile(t, away, "/usr/satya/thesis", "draft 2")
			if got := readFile(t, home, "/usr/satya/thesis"); got != "draft 2" {
				t.Fatalf("home re-read %q", got)
			}
		})
	}
}

func TestRedirectAfterVolumeMove(t *testing.T) {
	c := newTestCell(t, vice.Prototype, "s0", "s1")
	vid := c.mkVolume("u.satya", "/usr/satya", "satya", 0)
	v := c.newVenus("s0", "satya", nil)
	writeFile(t, v, "/usr/satya/f", "before move")
	// Move the volume to s1 behind Venus's back.
	op := c.newVenus("s0", "operator", nil)
	resp, err := op.callPath(nil, "/", rpc.Request{
		Op:   rpc.Op(proto.OpVolMove),
		Body: proto.Marshal(proto.VolMoveArgs{Volume: vid, Target: "s1"}),
	})
	if err != nil || !resp.OK() {
		t.Fatalf("move: %v %d %s", err, resp.Code, resp.Body)
	}
	// Venus still holds a hint pointing at s0; the wrong-server redirect
	// must carry it to s1 transparently. Force a fetch by dropping cache.
	v2 := c.newVenus("s0", "satya", nil)
	if got := readFile(t, v2, "/usr/satya/f"); got != "before move" {
		t.Fatalf("after move: %q", got)
	}
	// And the original Venus (with the stale connection hint) also works.
	writeFile(t, v, "/usr/satya/f", "after move")
	if got := readFile(t, v2, "/usr/satya/f"); got != "after move" {
		t.Fatalf("stale-hint write+read: %q", got)
	}
}

func TestDirtyFilesNeverEvicted(t *testing.T) {
	c := newTestCell(t, vice.Prototype, "s0")
	c.mkVolume("u", "/u", "satya", 0)
	v := c.newVenus("s0", "satya", func(cfg *Config) { cfg.MaxFiles = 2 })
	h, err := v.Open(nil, "/u/dirty", FlagWrite|FlagCreate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("unsaved")); err != nil {
		t.Fatal(err)
	}
	// Churn the cache past its limit.
	for i := 0; i < 5; i++ {
		writeFile(t, v, fmt.Sprintf("/u/churn%d", i), "x")
	}
	// The dirty handle still works and stores correctly at close.
	if err := h.Close(nil); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, v, "/u/dirty"); got != "unsaved" {
		t.Fatalf("dirty data lost: %q", got)
	}
}

func TestWriteWithoutWriteFlagRefused(t *testing.T) {
	c := newTestCell(t, vice.Prototype, "s0")
	c.mkVolume("u", "/u", "satya", 0)
	v := c.newVenus("s0", "satya", nil)
	writeFile(t, v, "/u/f", "x")
	h, err := v.Open(nil, "/u/f", FlagRead)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close(nil)
	if _, err := h.Write([]byte("y")); !errors.Is(err, proto.ErrAccess) {
		t.Fatalf("err = %v", err)
	}
}

func TestSeekAndSequentialRead(t *testing.T) {
	c := newTestCell(t, vice.Prototype, "s0")
	c.mkVolume("u", "/u", "satya", 0)
	v := c.newVenus("s0", "satya", nil)
	writeFile(t, v, "/u/f", "0123456789")
	h, err := v.Open(nil, "/u/f", FlagRead)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close(nil)
	buf := make([]byte, 4)
	n, _ := h.Read(buf)
	if string(buf[:n]) != "0123" {
		t.Fatalf("first read %q", buf[:n])
	}
	n, _ = h.Read(buf)
	if string(buf[:n]) != "4567" {
		t.Fatalf("second read %q", buf[:n])
	}
	if _, err := h.Seek(1, 0); err != nil {
		t.Fatal(err)
	}
	n, _ = h.Read(buf)
	if string(buf[:n]) != "1234" {
		t.Fatalf("after seek %q", buf[:n])
	}
	if off, _ := h.Seek(-2, 2); off != 8 {
		t.Fatalf("seek end = %d", off)
	}
}

func TestLocksThroughVenus(t *testing.T) {
	c := newTestCell(t, vice.Prototype, "s0")
	c.mkVolume("u", "/u", "satya", 0)
	op := c.newVenus("s0", "operator", nil)
	acl := prot.NewACL()
	acl.Grant("satya", prot.RightsAll)
	acl.Grant("howard", prot.RightsAll)
	if err := op.SetACL(nil, "/u", proto.ACLEncode(acl)); err != nil {
		t.Fatal(err)
	}
	vs := c.newVenus("s0", "satya", nil)
	vh := c.newVenus("s0", "howard", nil)
	writeFile(t, vs, "/u/f", "x")
	if err := vs.Lock(nil, "/u/f", true); err != nil {
		t.Fatal(err)
	}
	if err := vh.Lock(nil, "/u/f", false); !errors.Is(err, proto.ErrLocked) {
		t.Fatalf("err = %v, want ErrLocked", err)
	}
	if err := vs.Unlock(nil, "/u/f"); err != nil {
		t.Fatal(err)
	}
	if err := vh.Lock(nil, "/u/f", false); err != nil {
		t.Fatal(err)
	}
}
