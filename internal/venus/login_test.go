package venus

import (
	"errors"
	"testing"

	"itcfs/internal/prot"
	"itcfs/internal/proto"
	"itcfs/internal/vice"
)

// Public workstations (§1.1 mentions libraries): when a different user
// logs in, Venus must not serve another user's cached files without the
// custodian re-checking rights under the new identity.

func TestUserSwitchRevalidatesCache(t *testing.T) {
	c := newTestCell(t, vice.Revised, "s0")
	c.mkVolume("u.satya", "/usr/satya", "satya", 0)

	// satya restricts the home directory to himself, writes a private
	// file, and reads it so it lands in the workstation cache.
	v := c.newVenus("s0", "satya", nil)
	op := c.newVenus("s0", "operator", nil)
	acl := prot.NewACL()
	acl.Grant("satya", prot.RightsAll)
	if err := op.SetACL(nil, "/usr/satya", proto.ACLEncode(acl)); err != nil {
		t.Fatal(err)
	}
	writeFile(t, v, "/usr/satya/private", "secret research")
	if got := readFile(t, v, "/usr/satya/private"); got != "secret research" {
		t.Fatal("warm-up read failed")
	}

	// howard sits down at the same workstation. The cached bytes are
	// still on the local disk, but Venus revalidates under howard's
	// identity and the custodian refuses.
	v.Login("howard")
	if _, err := v.Open(nil, "/usr/satya/private", FlagRead); !errors.Is(err, proto.ErrAccess) {
		t.Fatalf("howard read satya's cached private file: err = %v", err)
	}
}

func TestUserSwitchPrototypeModeToo(t *testing.T) {
	c := newTestCell(t, vice.Prototype, "s0")
	c.mkVolume("u.satya", "/usr/satya", "satya", 0)
	v := c.newVenus("s0", "satya", nil)
	op := c.newVenus("s0", "operator", nil)
	acl := prot.NewACL()
	acl.Grant("satya", prot.RightsAll)
	if err := op.SetACL(nil, "/usr/satya", proto.ACLEncode(acl)); err != nil {
		t.Fatal(err)
	}
	writeFile(t, v, "/usr/satya/private", "secret")
	readFile(t, v, "/usr/satya/private")
	v.Login("howard")
	// Check-on-open validates with the custodian, which enforces rights.
	if _, err := v.Open(nil, "/usr/satya/private", FlagRead); !errors.Is(err, proto.ErrAccess) {
		t.Fatalf("err = %v, want ErrAccess", err)
	}
}

func TestSameUserReloginKeepsWarmCache(t *testing.T) {
	c := newTestCell(t, vice.Revised, "s0")
	c.mkVolume("u", "/u", "satya", 0)
	v := c.newVenus("s0", "satya", nil)
	writeFile(t, v, "/u/f", "warm")
	readFile(t, v, "/u/f")
	v.Login("satya") // re-login, same identity
	v.ResetStats()
	readFile(t, v, "/u/f")
	st := v.Stats()
	if st.Fetches != 0 || st.Hits != 1 {
		t.Fatalf("cache cold after same-user re-login: %+v", st)
	}
}

func TestUserSwitchKeepsServingAfterRefetch(t *testing.T) {
	// The new user CAN read files the ACL allows; switching merely forces
	// revalidation, not a broken cache.
	c := newTestCell(t, vice.Revised, "s0")
	c.mkVolume("shared", "/shared", "satya", 0)
	v := c.newVenus("s0", "satya", nil)
	writeFile(t, v, "/shared/pub", "for everyone")
	readFile(t, v, "/shared/pub")
	v.Login("howard")
	if got := readFile(t, v, "/shared/pub"); got != "for everyone" {
		t.Fatalf("howard read %q", got)
	}
}
