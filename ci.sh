#!/bin/sh
# CI gate: static checks, the full test suite under the race detector, and
# a plain run (which is also what the tier-1 acceptance uses).
set -eux

cd "$(dirname "$0")"

go vet ./...
go build ./...
go test -race ./...
go test ./...

# Short fuzz passes over the attacker-facing decoders and the path walker.
go test -run=NONE -fuzz='^FuzzDecodeCall$' -fuzztime=10s ./internal/rpc
go test -run=NONE -fuzz='^FuzzDecodeReply$' -fuzztime=10s ./internal/rpc
go test -run=NONE -fuzz='^FuzzResolvePath$' -fuzztime=10s ./internal/vice
go test -run=NONE -fuzz='^FuzzDispatch$' -fuzztime=10s ./internal/vice
