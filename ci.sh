#!/bin/sh
# CI gate: static checks, the full test suite under the race detector, and
# a plain run (which is also what the tier-1 acceptance uses).
set -eux

cd "$(dirname "$0")"

go vet ./...
go build ./...

# Project-specific static analysis (tools/itcvet), a hard gate ahead of the
# race pass: wall-clock bans in deterministic code, unseeded global rand,
# guarded-field lock discipline, map-iteration order leaking into ordered
# outputs, lock-order cycles and blocking-while-locked (lockorder), dropped
# durability errors (durcheck), and coverage drift — fuzz targets absent
# from this script, unpaired or untested codecs, uncontracted mutexes
# (driftcheck). Runs over ./... which includes ./tools/... itself, so the
# analyzers are held to their own rules. A finding fails CI.
go build -o itcvet ./tools/itcvet
go vet -vettool="$(pwd)/itcvet" ./...

# Lock-order graph: byte-identical across runs (determinism), acyclic
# (-lockgraph exits nonzero on a cycle), and matching the copy embedded in
# DESIGN.md section 7 so the documented graph cannot drift from the code.
# Regenerate the doc block with: ./itcvet -lockgraph ./...
lgdir="$(mktemp -d)"
./itcvet -lockgraph ./... > "$lgdir/g1.txt"
./itcvet -lockgraph ./... > "$lgdir/g2.txt"
cmp "$lgdir/g1.txt" "$lgdir/g2.txt"
sed -n '/<!-- lockgraph:begin -->/,/<!-- lockgraph:end -->/p' DESIGN.md \
	| sed '1d;$d' | sed '/^```/d' > "$lgdir/doc.txt"
cmp "$lgdir/g1.txt" "$lgdir/doc.txt"
rm -rf "$lgdir"
rm -f itcvet

# Known-vulnerability scan: advisory only (the tool and its vuln DB need
# network access, which CI containers may not have).
if command -v govulncheck >/dev/null 2>&1; then
	govulncheck ./... || echo "govulncheck: advisories above (non-fatal)"
else
	echo "govulncheck not installed; skipping vulnerability scan"
fi

go test -race ./...
go test ./...

# Shuffled run: catches tests that only pass because of package-level state
# left behind by an earlier test in file order.
go test -shuffle=on ./...

# Telemetry determinism smoke: two same-seed E15 runs must export
# byte-identical timeline dashboards, flight recordings and series CSVs
# through the real itcbench surfaces, not just the in-process test.
tmpdir="$(mktemp -d)"
go run ./cmd/itcbench -quick -run E15 -timeline-out "$tmpdir/t1.txt" -series-out "$tmpdir/s1.csv" >/dev/null
go run ./cmd/itcbench -quick -run E15 -timeline-out "$tmpdir/t2.txt" -series-out "$tmpdir/s2.csv" >/dev/null
cmp "$tmpdir/t1.txt" "$tmpdir/t2.txt"
cmp "$tmpdir/s1.csv" "$tmpdir/s2.csv"
rm -rf "$tmpdir"

# Replication determinism smoke: two same-seed E16 runs must produce
# byte-identical reports — release pushes, the mid-run crash, failovers,
# dedup counters and the Andrew run all replay exactly — and the
# experiment's own invariants (zero failed replicated reads, a real
# unreplicated outage, dedup ratio >= 1.5) are asserted inside it. Runs
# under the race detector like the rest of the suite; kept visible as
# its own gate alongside the E15 smoke above.
go test -race -run='^TestE16Determinism$' -count=1 ./internal/harness

# Crash-matrix smoke: every injected crash point across three seeds must
# recover to exactly the acknowledged prefix (strict) or an unbroken prefix
# (generous). The full property also runs inside `go test ./...`; this keeps
# it visible as its own gate.
go test -run='^TestWALCrashProperty$' -count=1 ./internal/store/walstore

# Kernel scale smoke: the batched E14 mix at 10k clients (quick per-client
# mix) must complete, and the scale-bench JSON it emits must carry exactly
# the same keys as the committed BENCH_scale.json, so the committed
# trajectory cannot silently drift from what the tool produces. Values are
# machine-dependent and deliberately not compared.
tmpdir="$(mktemp -d)"
go run ./cmd/itcbench -run E14 -clients 10000 -quick -scale-out "$tmpdir/scale.json" >/dev/null
grep -o '"[a-z_]*":' "$tmpdir/scale.json" | sort -u > "$tmpdir/keys_new.txt"
grep -o '"[a-z_]*":' BENCH_scale.json | sort -u > "$tmpdir/keys_committed.txt"
cmp "$tmpdir/keys_new.txt" "$tmpdir/keys_committed.txt"
rm -rf "$tmpdir"

# Observability-at-scale smoke: the E17 ablation at 10k clients (quick mix)
# must complete — which also enforces its built-in inertness guard (tracing
# off/sampled/full produce identical virtual timelines and byte-identical
# metric registries) and fires the seeded SLO breach with its critical-path
# attribution — and the JSON it emits must carry exactly the same keys as
# the committed BENCH_obs.json. Values are machine-dependent and
# deliberately not compared; the committed 30k overhead numbers are
# regenerated with: go run ./cmd/itcbench -run E17 -scale-reps 5 -obs-out BENCH_obs.json
tmpdir="$(mktemp -d)"
go run ./cmd/itcbench -run E17 -clients 10000 -obs-out "$tmpdir/obs.json" >/dev/null
grep -o '"[a-z_]*":' "$tmpdir/obs.json" | sort -u > "$tmpdir/keys_new.txt"
grep -o '"[a-z_]*":' BENCH_obs.json | sort -u > "$tmpdir/keys_committed.txt"
cmp "$tmpdir/keys_new.txt" "$tmpdir/keys_committed.txt"
rm -rf "$tmpdir"

# Observability zero-alloc gates, visible as their own pass: the sampled-out
# trace path and the striped-counter hot path must not allocate (these also
# run inside `go test ./...` above).
go test -run='^Test(SampledOutPathAllocFree|StripedCounterAllocFree|DisabledPathsAllocFree)$' -count=1 ./internal/trace

# Sim-kernel micro-benchmarks, one short pass each: keeps the park/resume,
# mailbox and timetable benches building and running. The zero-alloc gates
# (TestMailboxPutGetZeroAlloc and friends) run in `go test ./...` above.
go test -run=NONE -bench='^Benchmark(ParkResume|MailboxSendRecv|ScheduleDrain)$' -benchtime=100x ./internal/sim

# Short fuzz passes over the attacker-facing decoders and the path walker.
go test -run=NONE -fuzz='^FuzzDecodeCall$' -fuzztime=10s ./internal/rpc
go test -run=NONE -fuzz='^FuzzDecodeReply$' -fuzztime=10s ./internal/rpc
go test -run=NONE -fuzz='^FuzzResolvePath$' -fuzztime=10s ./internal/vice
go test -run=NONE -fuzz='^FuzzDispatch$' -fuzztime=10s ./internal/vice
go test -run=NONE -fuzz='^FuzzLocEntry$' -fuzztime=10s ./internal/proto
go test -run=NONE -fuzz='^FuzzDecodeBulkTestValid$' -fuzztime=10s ./internal/wire
go test -run=NONE -fuzz='^FuzzDecodeBulkBreak$' -fuzztime=10s ./internal/wire
go test -run=NONE -fuzz='^FuzzWALReplay$' -fuzztime=10s ./internal/store/walstore
go test -run=NONE -fuzz='^FuzzReadRecord$' -fuzztime=10s ./internal/store/walstore
