package itcfs

import (
	"strings"
	"time"

	"itcfs/internal/proto"
	"itcfs/internal/rpc"
	"itcfs/internal/vice"
)

// CostConfig is the calibrated resource model for a mid-1980s cluster
// server (a Vax-class machine with one disk arm) serving the Vice protocol.
// The simulator charges these costs per call; utilization percentages and
// latency ratios in the evaluation emerge from the queueing they induce.
//
// Absolute values are calibrated so the five-phase benchmark of §5.2 lands
// near its reported shape (≈1000 s locally, ≈80 % longer fully remote); the
// comparative results are insensitive to modest changes in them.
type CostConfig struct {
	// AuthCPU is charged per handshake message served.
	AuthCPU time.Duration
	// BaseCPU is charged for every call (request parsing, dispatch).
	BaseCPU time.Duration
	// ProcessSwitch models the prototype's per-client Unix server
	// processes: "significant performance degradation is caused by context
	// switching" (§3.5.2). Zero in revised mode's single-process server.
	ProcessSwitch time.Duration
	// WalkComponent is charged per pathname component the server walks
	// (prototype mode; revised clients present FIDs).
	WalkComponent time.Duration
	// Per-op CPU beyond BaseCPU.
	ValidCPU  time.Duration // TestValid
	StatCPU   time.Duration // FetchStatus / SetStatus
	FetchCPU  time.Duration // Fetch, plus FetchCPUPerKB
	StoreCPU  time.Duration // Store, plus StoreCPUPerKB
	DirCPU    time.Duration // directory mutations
	OtherCPU  time.Duration // everything else
	PerKBCPU  time.Duration // data handling (copying, checksums) per KB
	FetchDisk time.Duration // disk seek+rotate per fetch
	StoreDisk time.Duration // per store
	PerKBDisk time.Duration // transfer per KB
	// LightDisk is charged on validations and status calls: the prototype
	// stored Vice status in .admin files, so even a TestValid touched the
	// server's disk (§3.5.2).
	LightDisk time.Duration
}

// DefaultCosts returns the calibrated 1985-era model. The scale is set by
// the paper's own data: its five-phase benchmark ran ≈80% longer remotely
// (≈800 extra seconds over a few hundred whole-file operations), so a
// whole-file fetch or store on the prototype cost on the order of seconds —
// user-level servers, per-client processes, server-side pathname walks and
// software data handling on a ~1 MIPS machine. Light calls (validations,
// status) cost ≈100-200 ms, which is what makes 20 workstations per server
// land near the paper's ≈40% CPU utilization.
func DefaultCosts() CostConfig {
	return CostConfig{
		AuthCPU:       40 * time.Millisecond,
		BaseCPU:       15 * time.Millisecond,
		ProcessSwitch: 40 * time.Millisecond,
		WalkComponent: 20 * time.Millisecond,
		ValidCPU:      30 * time.Millisecond,
		StatCPU:       50 * time.Millisecond,
		FetchCPU:      1600 * time.Millisecond,
		StoreCPU:      2000 * time.Millisecond,
		DirCPU:        520 * time.Millisecond,
		OtherCPU:      40 * time.Millisecond,
		PerKBCPU:      20 * time.Millisecond,
		FetchDisk:     350 * time.Millisecond,
		StoreDisk:     450 * time.Millisecond,
		PerKBDisk:     10 * time.Millisecond,
		LightDisk:     65 * time.Millisecond,
	}
}

// Model builds the rpc.CostModel for a server in the given mode.
func (c CostConfig) Model(mode vice.Mode) rpc.CostModel {
	return func(ctx rpc.Ctx, req rpc.Request, resp rpc.Response) rpc.Cost {
		cost := rpc.Cost{CPU: c.BaseCPU}
		if mode == vice.Prototype {
			cost.CPU += c.ProcessSwitch
			cost.CPU += time.Duration(pathComponents(req)) * c.WalkComponent
		}
		kbIn := time.Duration((len(req.Bulk) + 1023) / 1024)
		kbOut := time.Duration((len(resp.Bulk) + 1023) / 1024)
		switch uint16(req.Op) {
		case proto.OpTestValid:
			cost.CPU += c.ValidCPU
			cost.Disk += c.LightDisk
		case proto.OpBulkTestValid:
			// Each item still pays the validation work, but the batch shares
			// one request's parsing/dispatch and one pass over the status
			// area — that amortization is the revised design's win.
			k := time.Duration(bulkItems(req))
			cost.CPU += k * c.ValidCPU
			cost.Disk += c.LightDisk
		case proto.OpFetchStatus, proto.OpSetStatus:
			cost.CPU += c.StatCPU
			cost.Disk += c.LightDisk
		case proto.OpFetch:
			cost.CPU += c.FetchCPU + kbOut*c.PerKBCPU
			cost.Disk += c.FetchDisk + kbOut*c.PerKBDisk
		case proto.OpStore:
			cost.CPU += c.StoreCPU + kbIn*c.PerKBCPU
			cost.Disk += c.StoreDisk + kbIn*c.PerKBDisk
		case proto.OpCreate, proto.OpMakeDir, proto.OpRemove, proto.OpRemoveDir,
			proto.OpRename, proto.OpSymlink, proto.OpLink, proto.OpSetACL:
			cost.CPU += c.DirCPU
			cost.Disk += c.StoreDisk / 2
		default:
			cost.CPU += c.OtherCPU
		}
		return cost
	}
}

// bulkItems reads the leading item count of a bulk request body (all bulk
// messages start with a u32 list length), clamped to the protocol cap so a
// malformed count cannot inflate the charge.
func bulkItems(req rpc.Request) int {
	if len(req.Body) < 4 {
		return 0
	}
	n := int(uint32(req.Body[0]) | uint32(req.Body[1])<<8 | uint32(req.Body[2])<<16 | uint32(req.Body[3])<<24)
	if n < 0 {
		return 0
	}
	if n > proto.MaxBulkItems {
		n = proto.MaxBulkItems
	}
	return n
}

// pathComponents counts the pathname components a prototype server walks
// for this request. Every file-op body begins with a Ref whose first field
// is the length-prefixed path, so the count can be read without coupling
// the cost model to each message layout; non-path bodies yield zero.
func pathComponents(req rpc.Request) int {
	if len(req.Body) < 4 {
		return 0
	}
	n := int(uint32(req.Body[0]) | uint32(req.Body[1])<<8 | uint32(req.Body[2])<<16 | uint32(req.Body[3])<<24)
	if n <= 0 || 4+n > len(req.Body) {
		return 0
	}
	path := string(req.Body[4 : 4+n])
	if !strings.HasPrefix(path, "/") {
		return 0
	}
	return strings.Count(path, "/")
}
