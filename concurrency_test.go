package itcfs

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"itcfs/internal/proto"
	"itcfs/internal/sim"
)

// Many workstations race updates to one shared file. Whatever interleaving
// the virtual time produces, the system must converge: when the dust
// settles, every workstation re-reading the file sees the custodian's
// single current version — one of the written values, intact (§3.2, §3.6).
func TestSharedFileConvergence(t *testing.T) {
	for _, mode := range []Mode{Prototype, Revised} {
		t.Run(mode.String(), func(t *testing.T) {
			cell := NewCell(CellConfig{Mode: mode, Clusters: 2})
			var err error
			cell.Run(func(p *sim.Proc) {
				admin, aerr := cell.Admin(p, 0)
				if aerr != nil {
					err = aerr
					return
				}
				if _, err = admin.NewUserAt(p, "team", "pw", 0, ""); err != nil {
					return
				}
				// Everyone writes through one account; the racing is what
				// matters here, not protection.
			})
			if err != nil {
				t.Fatal(err)
			}

			const writers = 10
			var stations []*Workstation
			for i := 0; i < writers; i++ {
				stations = append(stations, cell.AddWorkstation(i%2, fmt.Sprintf("racer%d", i)))
			}
			cell.Run(func(p *sim.Proc) {
				for _, ws := range stations {
					if lerr := ws.Login(p, "team", "pw"); lerr != nil {
						err = lerr
						return
					}
				}
				err = stations[0].FS.WriteFile(p, "/vice/usr/team/shared", []byte("genesis"))
			})
			if err != nil {
				t.Fatal(err)
			}

			// Each station repeatedly reads and rewrites the file on its own
			// schedule; iterations interleave arbitrarily in virtual time.
			var writeErr error
			for i, ws := range stations {
				i, ws := i, ws
				cell.Kernel.Spawn(fmt.Sprintf("racer-%d", i), func(p *sim.Proc) {
					r := rand.New(rand.NewSource(int64(i)))
					for round := 0; round < 15; round++ {
						p.Sleep(time.Duration(r.Intn(5000)) * time.Millisecond)
						if _, rerr := ws.FS.ReadFile(p, "/vice/usr/team/shared"); rerr != nil {
							writeErr = rerr
							return
						}
						payload := []byte(fmt.Sprintf("writer-%d-round-%d|%s", i, round,
							string(make([]byte, r.Intn(500)))))
						if werr := ws.FS.WriteFile(p, "/vice/usr/team/shared", payload); werr != nil {
							writeErr = werr
							return
						}
					}
				})
			}
			cell.Kernel.Run()
			if writeErr != nil {
				t.Fatal(writeErr)
			}

			// Convergence: every station re-reads and sees the same, intact
			// payload matching the custodian's copy.
			var versions []string
			cell.Run(func(p *sim.Proc) {
				for _, ws := range stations {
					data, rerr := ws.FS.ReadFile(p, "/vice/usr/team/shared")
					if rerr != nil {
						err = rerr
						return
					}
					versions = append(versions, string(data))
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < len(versions); i++ {
				if versions[i] != versions[0] {
					t.Fatalf("stations disagree after convergence:\n%q\nvs\n%q", versions[0], versions[i])
				}
			}
			// The surviving value is a complete writer payload, never a blend.
			if len(versions[0]) < len("writer-0-round-0|") || versions[0][:7] != "writer-" {
				t.Fatalf("converged value is not an intact write: %q", versions[0])
			}
		})
	}
}

// Determinism: two cells built and driven identically produce identical
// call histograms and identical virtual clocks — the property every
// experiment's reproducibility rests on.
func TestCellDeterminism(t *testing.T) {
	run := func() (sim.Time, map[string]int64) {
		cell := NewCell(CellConfig{Mode: Prototype, Clusters: 2})
		var err error
		cell.Run(func(p *sim.Proc) {
			admin, aerr := cell.Admin(p, 0)
			if aerr != nil {
				err = aerr
				return
			}
			err = admin.NewUser(p, "u", "pw", 0)
		})
		if err != nil {
			t.Fatal(err)
		}
		ws := cell.AddWorkstation(1, "ws")
		cell.Run(func(p *sim.Proc) {
			if err = ws.Login(p, "u", "pw"); err != nil {
				return
			}
			r := rand.New(rand.NewSource(42))
			for i := 0; i < 40; i++ {
				path := fmt.Sprintf("/vice/usr/u/f%d", r.Intn(8))
				if r.Intn(3) == 0 {
					err = ws.FS.WriteFile(p, path, make([]byte, r.Intn(4000)))
				} else {
					_, err = ws.FS.Stat(p, path)
				}
				if err != nil && !isExpected(err) {
					return
				}
				err = nil
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[string]int64)
		for _, s := range cell.Servers {
			for op, n := range s.Endpoint.CallCounts() {
				counts[fmt.Sprintf("%s/%d", s.Vice.Name(), op)] += n
			}
		}
		return cell.Now(), counts
	}
	t1, c1 := run()
	t2, c2 := run()
	if t1 != t2 {
		t.Fatalf("virtual clocks diverge: %v vs %v", t1, t2)
	}
	if len(c1) != len(c2) {
		t.Fatalf("histograms diverge: %v vs %v", c1, c2)
	}
	for k, v := range c1 {
		if c2[k] != v {
			t.Fatalf("histograms diverge at %s: %d vs %d", k, v, c2[k])
		}
	}
}

func isExpected(err error) bool {
	return errors.Is(err, proto.ErrNoEnt) || errors.Is(err, proto.ErrAccess)
}
