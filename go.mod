module itcfs

go 1.22
