package itcfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"itcfs/internal/sim"
	"itcfs/internal/unixfs"
	"itcfs/internal/virtue"
)

// Conformance: "other than performance, there is no difference between
// accessing a local file and a file in the shared name space" (§3.2).
// Random operation sequences applied in parallel to a Vice home directory
// and to a plain local file system must leave identical trees.

type confOp int

const (
	opWrite confOp = iota
	opRead
	opMkdir
	opRemove
	opRemoveDir
	opRename
	opOverwrite
	confOps
)

// confRunner applies mirrored operations to the shared space (through the
// full Venus/Vice stack) and to a local reference file system.
type confRunner struct {
	t     *testing.T
	err   error // first divergence; checked after the kernel run
	ws    *Workstation
	ref   *unixfs.FS
	base  string // Vice-side base directory ("/vice/usr/satya")
	rbase string // reference-side base ("/model")
	r     *rand.Rand
	dirs  []string // relative dir paths ("" = base itself)
	files []string // relative file paths
}

func (c *confRunner) vicePath(rel string) string { return c.base + rel }
func (c *confRunner) refPath(rel string) string  { return c.rbase + rel }

func (c *confRunner) pickDir() string {
	return c.dirs[c.r.Intn(len(c.dirs))]
}

func (c *confRunner) pickFile() (string, bool) {
	if len(c.files) == 0 {
		return "", false
	}
	return c.files[c.r.Intn(len(c.files))], true
}

// step applies one random mirrored operation; both sides must agree on
// success or failure.
func (c *confRunner) step(p *sim.Proc, n int) {
	switch confOp(c.r.Intn(int(confOps))) {
	case opWrite, opOverwrite:
		rel := c.pickDir() + fmt.Sprintf("/f%d", c.r.Intn(12))
		data := make([]byte, c.r.Intn(3000))
		for i := range data {
			data[i] = byte(c.r.Intn(256))
		}
		errV := c.ws.FS.WriteFile(p, c.vicePath(rel), data)
		errR := c.ref.WriteFile(c.refPath(rel), data, 0o644, "satya")
		c.agree(n, "write "+rel, errV, errR)
		if errV == nil {
			c.noteFile(rel)
		}
	case opRead:
		rel, ok := c.pickFile()
		if !ok {
			return
		}
		dataV, errV := c.ws.FS.ReadFile(p, c.vicePath(rel))
		dataR, errR := c.ref.ReadFile(c.refPath(rel))
		c.agree(n, "read "+rel, errV, errR)
		if errV == nil && !bytes.Equal(dataV, dataR) {
			c.fail(fmt.Errorf("op %d: read %s: contents diverge (%d vs %d bytes)", n, rel, len(dataV), len(dataR)))
		}
	case opMkdir:
		rel := c.pickDir() + fmt.Sprintf("/d%d", c.r.Intn(6))
		errV := c.ws.FS.Mkdir(p, c.vicePath(rel), 0o755)
		errR := c.ref.Mkdir(c.refPath(rel), 0o755, "satya")
		c.agree(n, "mkdir "+rel, errV, errR)
		if errV == nil {
			c.dirs = append(c.dirs, rel)
		}
	case opRemove:
		rel, ok := c.pickFile()
		if !ok {
			return
		}
		errV := c.ws.FS.Remove(p, c.vicePath(rel))
		errR := c.ref.Remove(c.refPath(rel))
		c.agree(n, "remove "+rel, errV, errR)
		if errV == nil {
			c.dropFile(rel)
		}
	case opRemoveDir:
		if len(c.dirs) < 2 {
			return
		}
		rel := c.dirs[1+c.r.Intn(len(c.dirs)-1)] // never the base
		errV := c.ws.FS.RemoveDir(p, c.vicePath(rel))
		errR := c.ref.RemoveDir(c.refPath(rel))
		c.agree(n, "rmdir "+rel, errV, errR)
		if errV == nil {
			c.dropDir(rel)
		}
	case opRename:
		rel, ok := c.pickFile()
		if !ok {
			return
		}
		to := c.pickDir() + fmt.Sprintf("/r%d", c.r.Intn(12))
		errV := c.ws.FS.Rename(p, c.vicePath(rel), c.vicePath(to))
		errR := c.ref.Rename(c.refPath(rel), c.refPath(to))
		c.agree(n, fmt.Sprintf("rename %s -> %s", rel, to), errV, errR)
		if errV == nil {
			c.dropFile(rel)
			c.dropFile(to)
			c.noteFile(to)
		}
	}
}

func (c *confRunner) agree(n int, op string, errV, errR error) {
	if (errV == nil) != (errR == nil) {
		c.fail(fmt.Errorf("op %d (%s): vice err=%v, reference err=%v", n, op, errV, errR))
	}
}

// fail records the first divergence. t.Fatal must not run inside a sim
// process (Goexit would abandon the kernel), so errors surface after Run.
func (c *confRunner) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

func (c *confRunner) noteFile(rel string) {
	for _, f := range c.files {
		if f == rel {
			return
		}
	}
	c.files = append(c.files, rel)
}

func (c *confRunner) dropFile(rel string) {
	out := c.files[:0]
	for _, f := range c.files {
		if f != rel {
			out = append(out, f)
		}
	}
	c.files = out
}

func (c *confRunner) dropDir(rel string) {
	out := c.dirs[:0]
	for _, d := range c.dirs {
		if d != rel {
			out = append(out, d)
		}
	}
	c.dirs = out
}

// snapshotVice walks a tree into sorted "path size hash" lines.
func snapshotVice(p *sim.Proc, fs *virtue.FS, root string) ([]string, error) {
	var out []string
	var walk func(dir, rel string) error
	walk = func(dir, rel string) error {
		entries, err := fs.ReadDir(p, dir)
		if err != nil {
			return fmt.Errorf("snapshot %s: %w", dir, err)
		}
		for _, e := range entries {
			child, childRel := dir+"/"+e.Name, rel+"/"+e.Name
			if e.IsDir {
				out = append(out, childRel+"/")
				if err := walk(child, childRel); err != nil {
					return err
				}
				continue
			}
			data, err := fs.ReadFile(p, child)
			if err != nil {
				return fmt.Errorf("snapshot read %s: %w", child, err)
			}
			out = append(out, fmt.Sprintf("%s %d %x", childRel, len(data), checksum(data)))
		}
		return nil
	}
	if err := walk(root, ""); err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

func snapshotRef(fs *unixfs.FS, root string) ([]string, error) {
	var out []string
	err := fs.Walk(root, func(path string, st unixfs.Stat) error {
		rel := path[len(root):]
		if rel == "" {
			return nil
		}
		if st.Type == unixfs.TypeDir {
			out = append(out, rel+"/")
			return nil
		}
		data, err := fs.ReadFile(path)
		if err != nil {
			return err
		}
		out = append(out, fmt.Sprintf("%s %d %x", rel, len(data), checksum(data)))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("snapshot ref: %w", err)
	}
	sort.Strings(out)
	return out, nil
}

func checksum(b []byte) uint32 {
	var h uint32 = 2166136261
	for _, c := range b {
		h = (h ^ uint32(c)) * 16777619
	}
	return h
}

func TestViceMatchesLocalSemantics(t *testing.T) {
	for _, mode := range []Mode{Prototype, Revised} {
		for seed := int64(1); seed <= 8; seed++ {
			t.Run(fmt.Sprintf("%v/seed%d", mode, seed), func(t *testing.T) {
				cell, ws := provision(t, mode, 1)
				ref := unixfs.New(nil)
				if err := ref.Mkdir("/model", 0o755, "satya"); err != nil {
					t.Fatal(err)
				}
				c := &confRunner{
					t: t, ws: ws, ref: ref,
					base: "/vice/usr/satya", rbase: "/model",
					r:    rand.New(rand.NewSource(seed)),
					dirs: []string{""},
				}
				var got, want []string
				cell.Run(func(p *sim.Proc) {
					for n := 0; n < 250 && c.err == nil; n++ {
						c.step(p, n)
					}
					if c.err != nil {
						return
					}
					var serr error
					if got, serr = snapshotVice(p, ws.FS, c.base); serr != nil {
						c.fail(serr)
						return
					}
					if want, serr = snapshotRef(ref, c.rbase); serr != nil {
						c.fail(serr)
					}
				})
				if c.err != nil {
					t.Fatal(c.err)
				}
				if len(got) != len(want) {
					t.Fatalf("trees diverge: %d vs %d entries\nvice: %v\nref:  %v",
						len(got), len(want), got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("trees diverge at %d:\nvice: %s\nref:  %s", i, got[i], want[i])
					}
				}
			})
		}
	}
}
