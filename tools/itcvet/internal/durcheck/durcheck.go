// Package durcheck enforces error discipline on the durability plane.
//
// The server's integrity story (§2 of the paper, DESIGN.md §6) rests on one
// rule: nothing is acknowledged until it is on disk, and a store that has
// failed stays failed. Every function in that chain — Store.Commit, Sync,
// Checkpoint, Recover, the per-volume journal writes (BeginVolume,
// DropVolume, PutLoc, PutProt), WAL appends, os.File.Sync and the atomic
// replace — reports failure through its error return, and the caller must
// either propagate it or latch it. Discarding one of those errors silently
// converts "ack after fsync" into "ack and hope": the client sees success
// for an update the disk never saw.
//
// durcheck therefore flags any durability call whose error is
//
//   - ignored outright (the call stands alone as a statement, or is
//     deferred with no wrapper),
//   - assigned to the blank identifier, or
//   - captured in a variable that is then never read, or read only as an
//     argument to logging (log-and-continue).
//
// A durability call is a method from the set above whose receiver belongs
// to the durability plane: a type named Store or File, or any type declared
// in a package whose name contains "store" or is "os"; WriteFileAtomic
// counts on any receiver. Reading the error in a condition, returning it,
// storing it in a field or passing it to a non-logging function (including
// fmt.Errorf wrapping) all count as propagation; passing it only to
// Print/Printf/Println/Log/Logf does not. Genuine best-effort sites carry
// the standard escape hatch:
//
//	//itcvet:allow durability -- <why>
package durcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"itcfs/tools/itcvet/internal/check"
)

// Analyzer is the durcheck pass.
var Analyzer = &check.Analyzer{
	Name:          "durcheck",
	Doc:           "durability-plane errors (Store.Commit/Sync/Checkpoint/Recover, WAL appends, fsync) must be propagated or latched, never dropped or merely logged",
	Category:      "durability",
	SkipTestFiles: true,
	Run:           run,
}

// durMethods are the durability-plane method names (on store-like or
// file-like receivers).
var durMethods = map[string]bool{
	"Commit": true, "Sync": true, "Checkpoint": true, "Recover": true,
	"BeginVolume": true, "DropVolume": true, "PutLoc": true, "PutProt": true,
	"Append": true,
}

// loggers are call names through which reading an error does not count as
// handling it.
var loggers = map[string]bool{
	"Print": true, "Printf": true, "Println": true, "Log": true, "Logf": true,
}

func run(pass *check.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, fd.Body)
		}
	}
}

// checkBody scans one function body statement-wise; expression-position
// durability calls (returned, compared, passed on) are handled by the
// caller of that expression and need no finding.
func checkBody(pass *check.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if name, ok := durCall(pass, s.X); ok {
				pass.Reportf(s.X.Pos(),
					"%s error is ignored; durability errors must be propagated or latched, or the ack-after-fsync contract silently breaks", name)
			}
		case *ast.DeferStmt:
			if name, ok := durCall(pass, s.Call); ok {
				pass.Reportf(s.Call.Pos(),
					"deferred %s discards its error; durability errors must be propagated or latched", name)
			}
		case *ast.AssignStmt:
			checkAssign(pass, body, s)
		}
		return true
	})
}

// checkAssign inspects an assignment whose right side contains durability
// calls and classifies what happens to each call's error value.
func checkAssign(pass *check.Pass, body *ast.BlockStmt, s *ast.AssignStmt) {
	// Map each durability call on the Rhs to the identifier receiving its
	// error: position i for 1:1 assignments, the last Lhs for a single
	// multi-value call (rec, err := st.Recover()).
	type bind struct {
		name string
		lhs  ast.Expr
	}
	var binds []bind
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		if name, ok := durCall(pass, s.Rhs[0]); ok {
			binds = append(binds, bind{name, s.Lhs[len(s.Lhs)-1]})
		}
	} else {
		for i, r := range s.Rhs {
			if name, ok := durCall(pass, r); ok && i < len(s.Lhs) {
				binds = append(binds, bind{name, s.Lhs[i]})
			}
		}
	}
	for _, b := range binds {
		id, ok := b.lhs.(*ast.Ident)
		if !ok {
			continue // field or index target: stored, i.e. latched
		}
		if id.Name == "_" {
			pass.Reportf(id.Pos(),
				"%s error is assigned to _; durability errors must be propagated or latched", b.name)
			continue
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj == nil {
			continue
		}
		switch classifyUses(pass, body, obj, s.End()) {
		case useNone:
			pass.Reportf(id.Pos(),
				"%s error is captured in %s but never read afterwards; durability errors must be propagated or latched", b.name, id.Name)
		case useLogOnly:
			pass.Reportf(id.Pos(),
				"%s error is only logged; log-and-continue drops the failure — propagate or latch it", b.name)
		}
	}
}

type useClass int

const (
	useNone useClass = iota
	useLogOnly
	usePropagated
)

// classifyUses looks at every read of obj after pos within body.
func classifyUses(pass *check.Pass, body *ast.BlockStmt, obj types.Object, pos token.Pos) useClass {
	cls := useNone
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok || id.Pos() <= pos || pass.Info.Uses[id] != obj {
			return true
		}
		if isAssignTarget(stack, id) {
			return true // overwritten, not read
		}
		if isNilCompare(stack, id) {
			return true // `err != nil` alone decides nothing about the value's fate
		}
		if insideLoggingCall(pass, stack, id) {
			if cls < useLogOnly {
				cls = useLogOnly
			}
			return true
		}
		cls = usePropagated
		return true
	})
	return cls
}

// isAssignTarget reports whether id appears on the left side of the
// nearest enclosing assignment.
func isAssignTarget(stack []ast.Node, id *ast.Ident) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if as, ok := stack[i].(*ast.AssignStmt); ok {
			for _, l := range as.Lhs {
				if l == ast.Expr(id) {
					return true
				}
			}
			return false
		}
	}
	return false
}

// isNilCompare reports whether id's immediate context is an equality
// comparison (err != nil): a test, not a handling of the value. The branch
// it guards is classified by what it does with the error, not by the test.
func isNilCompare(stack []ast.Node, id *ast.Ident) bool {
	if len(stack) < 2 {
		return false
	}
	be, ok := stack[len(stack)-2].(*ast.BinaryExpr)
	return ok && (be.Op == token.EQL || be.Op == token.NEQ)
}

// insideLoggingCall reports whether id is an argument of a call whose name
// is in the logging set (fmt.Printf, log.Printf, recorder.Log, t.Logf...).
// fmt.Errorf is deliberately not in the set: wrapping is propagation.
func insideLoggingCall(pass *check.Pass, stack []ast.Node, id *ast.Ident) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		call, ok := stack[i].(*ast.CallExpr)
		if !ok {
			continue
		}
		name := ""
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if loggers[name] {
			for _, arg := range call.Args {
				if arg.Pos() <= id.Pos() && id.End() <= arg.End() {
					return true
				}
			}
		}
		return false // id feeds a non-logging call: propagation
	}
	return false
}

// durCall reports whether e is a durability-plane call returning an error,
// and names it for the diagnostic.
func durCall(pass *check.Pass, e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !returnsError(sig) {
		return "", false
	}
	name := sel.Sel.Name
	if name == "WriteFileAtomic" {
		return callName(sig, name), true
	}
	if !durMethods[name] {
		return "", false
	}
	tn := namedOf(sig.Recv().Type())
	if tn == nil || !durReceiver(tn) {
		return "", false
	}
	return callName(sig, name), true
}

// durReceiver reports whether tn belongs to the durability plane.
func durReceiver(tn *types.TypeName) bool {
	if tn.Name() == "Store" || tn.Name() == "File" {
		return true
	}
	if pkg := tn.Pkg(); pkg != nil {
		if strings.Contains(pkg.Name(), "store") || pkg.Name() == "os" {
			return true
		}
	}
	return false
}

func callName(sig *types.Signature, method string) string {
	if tn := namedOf(sig.Recv().Type()); tn != nil {
		return tn.Name() + "." + method
	}
	return method
}

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// namedOf returns the *types.TypeName behind t, unwrapping one pointer.
func namedOf(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}
