// Package du exercises durcheck: every way a durability error can be
// dropped, and every way of handling one that counts.
package du

import "fmt"

type Store struct{ err error }

func (s *Store) Commit() error
func (s *Store) Sync() error
func (s *Store) Checkpoint() error
func (s *Store) Recover() (int, error)

type File struct{}

func (File) Sync() error
func (File) Append(b []byte) error

type FS struct{}

func (FS) WriteFileAtomic(name string, b []byte) error

// Rec is a flight-recorder-shaped logger.
type Rec struct{}

func (Rec) Log(args ...any)

// Cache is outside the durability plane: same method name, no finding.
type Cache struct{}

func (Cache) Sync() error

func drop(s *Store) {
	s.Commit() // want `Store\.Commit error is ignored`
}

func deferDrop(f File) {
	defer f.Sync() // want `deferred File\.Sync discards its error`
}

func blank(s *Store) {
	_ = s.Sync() // want `Store\.Sync error is assigned to _`
}

func blankTuple(s *Store) {
	_, _ = s.Recover() // want `Store\.Recover error is assigned to _`
}

func blankReplace(fs FS) {
	_ = fs.WriteFileAtomic("loc.db", nil) // want `FS\.WriteFileAtomic error is assigned to _`
}

func overwritten(s *Store) error {
	err := s.Commit()
	if err != nil {
		return err
	}
	err = s.Sync() // want `Store\.Sync error is captured in err but never read`
	return nil
}

func logOnly(s *Store, r Rec) {
	err := s.Sync() // want `Store\.Sync error is only logged`
	if err != nil {
		r.Log("sync failed", err)
	}
}

func propagated(s *Store) error {
	return s.Sync() // returned: no finding
}

func checked(s *Store) error {
	if err := s.Checkpoint(); err != nil {
		return fmt.Errorf("checkpoint: %w", err) // wrapped: propagation
	}
	return nil
}

func latched(s *Store, f File) {
	if s.err == nil {
		s.err = f.Append(nil) // stored in a field: latched
	}
}

func bestEffort(f File) {
	//itcvet:allow durability -- advisory prefetch, repeated on the next commit
	_ = f.Sync()
}

func notDurability(c Cache) {
	c.Sync() // Cache is not store-like: no finding
}
