// Package fmt is a fixture stub: just the surface durcheck fixtures use.
package fmt

func Errorf(format string, args ...any) error
func Sprintf(format string, args ...any) string
func Printf(format string, args ...any) (int, error)
