package durcheck_test

import (
	"testing"

	"itcfs/tools/itcvet/internal/checktest"
	"itcfs/tools/itcvet/internal/durcheck"
)

func TestDurcheck(t *testing.T) {
	checktest.Run(t, durcheck.Analyzer, "testdata", "du")
}
