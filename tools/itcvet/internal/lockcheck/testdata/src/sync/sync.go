// Package sync is a fixture stub: the mutex surface lockcheck recognizes.
package sync

type Mutex struct{ state int32 }

func (m *Mutex) Lock()
func (m *Mutex) Unlock()
func (m *Mutex) TryLock() bool

type RWMutex struct{ state int32 }

func (m *RWMutex) Lock()
func (m *RWMutex) Unlock()
func (m *RWMutex) RLock()
func (m *RWMutex) RUnlock()
