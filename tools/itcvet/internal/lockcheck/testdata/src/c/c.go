// Fixture for lockcheck: guarded fields, the path-sensitive held-state
// tracking, RWMutex read/write levels, and both annotations.
package c

import "sync"

type counter struct {
	mu        sync.Mutex
	n         int      // guarded by mu
	names     []string // guarded by mu
	unguarded int
}

// The canonical pattern: lock, defer unlock, touch freely.
func (c *counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	c.names = append(c.names, "inc")
}

// Unguarded fields stay free.
func (c *counter) Meta() int { return c.unguarded }

func (c *counter) BadRead() int {
	return c.n // want `counter\.n is guarded by mu but read here`
}

func (c *counter) BadWrite() {
	c.n = 1 // want `counter\.n is guarded by mu but written here`
}

// Unlocking ends the protected region.
func (c *counter) UseAfterUnlock() int {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	n += c.n // want `counter\.n is guarded by mu but read here`
	return n
}

// A branch that unlocks and returns does not poison the fallthrough path.
func (c *counter) EarlyExit() int {
	c.mu.Lock()
	if c.n < 0 {
		c.mu.Unlock()
		return 0
	}
	defer c.mu.Unlock()
	return c.n
}

// Locking on only one branch does not protect the merge point.
func (c *counter) MaybeLocked(cond bool) {
	if cond {
		c.mu.Lock()
	}
	c.n++ // want `counter\.n is guarded by mu but written here`
	if cond {
		c.mu.Unlock()
	}
}

// A goroutine body starts with no locks held, whatever the spawner holds.
func (c *counter) Spawn() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	go func() {
		c.n++ // want `counter\.n is guarded by mu but written here`
	}()
}

// Taking a guarded field's address lets it escape the lock: a write.
func (c *counter) BadEscape() *int {
	return &c.n // want `counter\.n is guarded by mu but written here`
}

// Helpers that run under the caller's lock declare it.
//
//itcvet:holds mu
func (c *counter) incLocked() { c.n++ }

func (c *counter) ViaHelper() {
	c.mu.Lock()
	c.incLocked()
	c.mu.Unlock()
}

// The allow escape hatch still exists for deliberate racy reads.
func (c *counter) RacyPeek() int {
	return c.n //itcvet:allow unguarded -- fixture: approximate value is fine
}

type table struct {
	rw sync.RWMutex
	m  map[string]int // guarded by rw
}

func (t *table) Get(k string) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.m[k]
}

func (t *table) Put(k string, v int) {
	t.rw.Lock()
	defer t.rw.Unlock()
	t.m[k] = v
}

// Writing under the read lock is the subtle RWMutex bug.
func (t *table) BadPut(k string, v int) {
	t.rw.RLock()
	defer t.rw.RUnlock()
	t.m[k] = v // want `table\.m is written here while rw is held only for reading`
}

// Read-level helpers: holds(read) grants reads, not writes.
//
//itcvet:holds rw(read)
func (t *table) sizeLocked() int {
	t.m["x"] = 1 // want `table\.m is written here while rw is held only for reading`
	return len(t.m)
}

// An annotation naming a non-mutex is itself an error.
type wrong struct {
	// guarded by missing
	n int // want `guarded-by annotation names "missing", which is not a sync\.Mutex or sync\.RWMutex field of wrong`
}
