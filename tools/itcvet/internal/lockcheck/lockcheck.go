// Package lockcheck machine-checks the tree's "guarded by" comments.
//
// Struct fields protected by a mutex carry the canonical annotation
//
//	field T // guarded by mu
//
// (or the same text as the last line of the field's doc comment), where mu
// names a sync.Mutex or sync.RWMutex field of the same struct. For every
// method of such a struct, lockcheck walks the body tracking, per lock, a
// held level — none, read (RLock), write (Lock) — along each control-flow
// path, and reports any access to a guarded field on a path where the lock
// is not held: reads need at least the read level, writes the write level.
// This is exactly the class of bug PR 2 fixed by hand in CallbackTable,
// where an unlocked counter read raced the break path.
//
// The analysis is a conservative single-function approximation, not a
// whole-program proof:
//
//   - Branches merge to the weakest level on any incoming path, and a
//     branch that provably terminates (return, panic, break/continue) is
//     excluded from the merge — so the common "if bad { mu.Unlock();
//     return }" shape does not poison the rest of the method.
//   - Loop bodies merge with the zero-iteration path.
//   - A goroutine body starts with no locks held, whatever the spawner
//     held. Other function literals inherit the state at their creation
//     point, approximating synchronous use.
//   - Helper methods documented to run under the lock declare it with
//     //itcvet:holds mu (or //itcvet:holds mu(read)) in their doc comment,
//     which sets the entry state instead of suppressing the check; callers
//     are still checked at their own call sites' accesses.
//
// Accesses through anything but the receiver identifier (aliases, copies,
// other values of the type) are out of scope, as are constructors —
// objects not yet published need no lock.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"itcfs/tools/itcvet/internal/check"
)

// Analyzer is the lockcheck pass.
var Analyzer = &check.Analyzer{
	Name:     "lockcheck",
	Doc:      "verify that fields annotated 'guarded by mu' are only touched with the lock held",
	Category: "unguarded",
	Run:      run,
}

// guardRE is the canonical annotation: nothing but "guarded by <lock>" on
// its comment line (trailing period tolerated). DESIGN.md documents the
// form; anything else is prose, not a contract.
var guardRE = regexp.MustCompile(`^guarded by ([A-Za-z_][A-Za-z0-9_]*)\.?$`)

// holdsRE is the entry-state annotation for helpers called under the lock.
var holdsRE = regexp.MustCompile(`^itcvet:holds ([A-Za-z_][A-Za-z0-9_]*)(\(read\))?$`)

// Lock levels, ordered: holding more satisfies needing less.
const (
	lvlNone  = 0
	lvlRead  = 1
	lvlWrite = 2
)

// structInfo is one annotated struct: which fields each lock guards.
type structInfo struct {
	name   string
	fields map[string]string // field -> lock field name
	locks  map[string]bool   // lock field -> is RWMutex
}

func run(pass *check.Pass) {
	structs := collectGuarded(pass)
	if len(structs) == 0 {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			names := fd.Recv.List[0].Names
			if len(names) == 0 || names[0].Name == "_" {
				continue
			}
			recvObj := pass.Info.Defs[names[0]]
			if recvObj == nil {
				continue
			}
			si := structs[namedOf(recvObj.Type())]
			if si == nil {
				continue
			}
			c := &checker{pass: pass, recv: recvObj, si: si}
			c.block(fd.Body.List, entryState(fd.Doc, si))
		}
	}
}

// entryState derives the method's initial lock state from //itcvet:holds
// annotations in its doc comment.
func entryState(doc *ast.CommentGroup, si *structInfo) state {
	st := state{}
	if doc == nil {
		return st
	}
	for _, c := range doc.List {
		m := holdsRE.FindStringSubmatch(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")))
		if m == nil {
			continue
		}
		if _, ok := si.locks[m[1]]; !ok {
			continue // unknown lock; collectGuarded diagnoses the struct side
		}
		if m[2] != "" {
			st[m[1]] = max(st[m[1]], lvlRead)
		} else {
			st[m[1]] = lvlWrite
		}
	}
	return st
}

// collectGuarded parses every struct declaration's guarded-by annotations,
// validating that each names a mutex field of the same struct.
func collectGuarded(pass *check.Pass) map[*types.TypeName]*structInfo {
	out := map[*types.TypeName]*structInfo{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			tn, _ := pass.Info.Defs[ts.Name].(*types.TypeName)
			if tn == nil {
				return true
			}
			si := &structInfo{name: ts.Name.Name, fields: map[string]string{}, locks: map[string]bool{}}
			// First pass: find the mutex fields.
			for _, fld := range st.Fields.List {
				rw, isMutex := mutexType(pass, fld.Type)
				if !isMutex {
					continue
				}
				for _, name := range fld.Names {
					si.locks[name.Name] = rw
				}
			}
			// Second pass: bind annotated fields to their locks.
			for _, fld := range st.Fields.List {
				lock := guardAnnotation(fld)
				if lock == "" {
					continue
				}
				if _, ok := si.locks[lock]; !ok {
					pass.Reportf(fld.Pos(),
						"guarded-by annotation names %q, which is not a sync.Mutex or sync.RWMutex field of %s",
						lock, si.name)
					continue
				}
				for _, name := range fld.Names {
					si.fields[name.Name] = lock
				}
			}
			if len(si.fields) > 0 {
				out[tn] = si
			}
			return true
		})
	}
	return out
}

// guardAnnotation returns the lock named by fld's canonical guarded-by
// comment: the trailing line comment, or any line of the doc comment.
func guardAnnotation(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Comment, fld.Doc} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if m := guardRE.FindStringSubmatch(text); m != nil {
				return m[1]
			}
		}
	}
	return ""
}

// mutexType reports whether expr denotes sync.Mutex or sync.RWMutex
// (rw reports which).
func mutexType(pass *check.Pass, expr ast.Expr) (rw, ok bool) {
	t := pass.Info.TypeOf(expr)
	if t == nil {
		return false, false
	}
	named := namedOf(t)
	if named == nil || named.Pkg() == nil || named.Pkg().Path() != "sync" {
		return false, false
	}
	switch named.Name() {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}

// namedOf returns the *types.TypeName behind t, unwrapping one pointer.
func namedOf(t types.Type) *types.TypeName {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// state maps lock field name to held level.
type state map[string]int

func (s state) clone() state {
	out := state{}
	for k, v := range s {
		out[k] = v
	}
	return out
}

// meet merges two path states to the weakest common level.
func meet(a, b state) state {
	out := state{}
	for k, v := range a {
		out[k] = min(v, b[k])
	}
	return out
}

const (
	read  = 0
	write = 1
)

// checker walks one method body.
type checker struct {
	pass *check.Pass
	recv types.Object
	si   *structInfo
}

func (c *checker) block(list []ast.Stmt, st state) state {
	for _, s := range list {
		st = c.stmt(s, st)
	}
	return st
}

func (c *checker) stmt(s ast.Stmt, st state) state {
	switch s := s.(type) {
	case nil:
		return st
	case *ast.ExprStmt:
		if lock, op := c.lockOp(s.X); lock != "" {
			return apply(st, lock, op)
		}
		c.expr(s.X, st, read)
	case *ast.DeferStmt:
		if lock, _ := c.lockOp(s.Call); lock != "" {
			return st // deferred unlock fires at exit; no change now
		}
		c.expr(s.Call, st, read)
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			c.expr(a, st, read)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.block(fl.Body.List, state{}) // the goroutine holds nothing
		} else {
			c.expr(s.Call.Fun, st, read)
		}
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			c.expr(r, st, read)
		}
		for _, l := range s.Lhs {
			c.lvalue(l, st)
		}
	case *ast.IncDecStmt:
		c.lvalue(s.X, st)
	case *ast.IfStmt:
		st = c.stmt(s.Init, st)
		c.expr(s.Cond, st, read)
		thenOut := c.block(s.Body.List, st.clone())
		elseOut := st.clone()
		if s.Else != nil {
			elseOut = c.stmt(s.Else, st.clone())
		}
		thenDead := terminates(s.Body.List)
		elseDead := s.Else != nil && terminatesStmt(s.Else)
		switch {
		case thenDead && elseDead:
			return st
		case thenDead:
			return elseOut
		case elseDead:
			return thenOut
		default:
			return meet(thenOut, elseOut)
		}
	case *ast.ForStmt:
		st = c.stmt(s.Init, st)
		if s.Cond != nil {
			c.expr(s.Cond, st, read)
		}
		bodyOut := c.block(s.Body.List, st.clone())
		bodyOut = c.stmt(s.Post, bodyOut)
		return meet(st, bodyOut)
	case *ast.RangeStmt:
		c.expr(s.X, st, read)
		if s.Key != nil {
			c.lvalue(s.Key, st)
		}
		if s.Value != nil {
			c.lvalue(s.Value, st)
		}
		bodyOut := c.block(s.Body.List, st.clone())
		return meet(st, bodyOut)
	case *ast.SwitchStmt:
		st = c.stmt(s.Init, st)
		if s.Tag != nil {
			c.expr(s.Tag, st, read)
		}
		return c.clauses(s.Body.List, st)
	case *ast.TypeSwitchStmt:
		st = c.stmt(s.Init, st)
		c.stmt(s.Assign, st)
		return c.clauses(s.Body.List, st)
	case *ast.SelectStmt:
		return c.clauses(s.Body.List, st)
	case *ast.BlockStmt:
		return c.block(s.List, st.clone())
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.expr(r, st, read)
		}
	case *ast.SendStmt:
		c.expr(s.Chan, st, read)
		c.expr(s.Value, st, read)
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v, st, read)
					}
				}
			}
		}
	}
	return st
}

// clauses merges switch/select case bodies: the weakest level across every
// non-terminating case, and the entry state unless a default guarantees one
// case runs.
func (c *checker) clauses(list []ast.Stmt, st state) state {
	outs := []state{}
	hasDefault := false
	for _, cl := range list {
		var body []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				c.expr(e, st, read)
			}
			hasDefault = hasDefault || cl.List == nil
			body = cl.Body
		case *ast.CommClause:
			branch := c.stmt(cl.Comm, st.clone())
			hasDefault = hasDefault || cl.Comm == nil
			out := c.block(cl.Body, branch)
			if !terminates(cl.Body) {
				outs = append(outs, out)
			}
			continue
		}
		out := c.block(body, st.clone())
		if !terminates(body) {
			outs = append(outs, out)
		}
	}
	if !hasDefault || len(outs) == 0 {
		outs = append(outs, st)
	}
	merged := outs[0]
	for _, o := range outs[1:] {
		merged = meet(merged, o)
	}
	return merged
}

// lockOp recognizes recv.<lock>.Lock() and friends; returns the lock field
// name and the operation, or "".
func (c *checker) lockOp(e ast.Expr) (lock, op string) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	field, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := field.X.(*ast.Ident)
	if !ok || c.pass.Info.Uses[id] != c.recv {
		return "", ""
	}
	if _, known := c.si.locks[field.Sel.Name]; !known {
		return "", ""
	}
	return field.Sel.Name, sel.Sel.Name
}

func apply(st state, lock, op string) state {
	st = st.clone()
	switch op {
	case "Lock":
		st[lock] = lvlWrite
	case "RLock":
		st[lock] = max(st[lock], lvlRead)
	case "Unlock", "RUnlock":
		st[lock] = lvlNone
	}
	return st
}

// lvalue checks an assignment target.
func (c *checker) lvalue(e ast.Expr, st state) {
	switch e := e.(type) {
	case *ast.Ident:
		// Local or blank: not a guarded access.
	case *ast.SelectorExpr:
		c.expr(e, st, write)
	case *ast.IndexExpr:
		c.expr(e.X, st, write) // m[k] = v mutates the container
		c.expr(e.Index, st, read)
	case *ast.StarExpr:
		c.expr(e.X, st, write)
	case *ast.ParenExpr:
		c.lvalue(e.X, st)
	default:
		c.expr(e, st, read)
	}
}

// expr scans an expression for guarded accesses, mode read or write.
func (c *checker) expr(e ast.Expr, st state, mode int) {
	switch e := e.(type) {
	case nil:
	case *ast.SelectorExpr:
		c.access(e, st, mode)
		c.expr(e.X, st, mode) // v.field.sub: touching sub touches field
	case *ast.Ident, *ast.BasicLit:
	case *ast.CallExpr:
		c.expr(e.Fun, st, read)
		for _, a := range e.Args {
			c.expr(a, st, read)
		}
	case *ast.FuncLit:
		c.block(e.Body.List, st.clone()) // approximates synchronous use
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			c.expr(e.X, st, write) // address escapes the lock's reach
		} else {
			c.expr(e.X, st, mode)
		}
	case *ast.StarExpr:
		c.expr(e.X, st, mode)
	case *ast.ParenExpr:
		c.expr(e.X, st, mode)
	case *ast.IndexExpr:
		c.expr(e.X, st, mode)
		c.expr(e.Index, st, read)
	case *ast.SliceExpr:
		c.expr(e.X, st, mode)
		c.expr(e.Low, st, read)
		c.expr(e.High, st, read)
		c.expr(e.Max, st, read)
	case *ast.BinaryExpr:
		c.expr(e.X, st, read)
		c.expr(e.Y, st, read)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			c.expr(el, st, read)
		}
	case *ast.KeyValueExpr:
		c.expr(e.Key, st, read)
		c.expr(e.Value, st, read)
	case *ast.TypeAssertExpr:
		c.expr(e.X, st, mode)
	}
}

// access reports a guarded-field access made without the needed level.
func (c *checker) access(sel *ast.SelectorExpr, st state, mode int) {
	id, ok := sel.X.(*ast.Ident)
	if !ok || c.pass.Info.Uses[id] != c.recv {
		return
	}
	lock, guarded := c.si.fields[sel.Sel.Name]
	if !guarded {
		return
	}
	held := st[lock]
	switch {
	case held == lvlNone:
		verb := "read"
		if mode == write {
			verb = "written"
		}
		c.pass.Reportf(sel.Pos(),
			"%s.%s is guarded by %s but %s here on a path that does not hold it (//itcvet:holds %s on the method if every caller locks, or //itcvet:allow unguarded -- why)",
			c.si.name, sel.Sel.Name, lock, verb, lock)
	case held == lvlRead && mode == write:
		c.pass.Reportf(sel.Pos(),
			"%s.%s is written here while %s is held only for reading",
			c.si.name, sel.Sel.Name, lock)
	}
}

// terminatesStmt reports whether control cannot flow past s.
func terminatesStmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(s.List)
	case *ast.IfStmt:
		return terminates(s.Body.List) && s.Else != nil && terminatesStmt(s.Else)
	case *ast.LabeledStmt:
		return terminatesStmt(s.Stmt)
	}
	return false
}

func terminates(list []ast.Stmt) bool {
	return len(list) > 0 && terminatesStmt(list[len(list)-1])
}
