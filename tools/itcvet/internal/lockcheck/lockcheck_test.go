package lockcheck_test

import (
	"testing"

	"itcfs/tools/itcvet/internal/checktest"
	"itcfs/tools/itcvet/internal/lockcheck"
)

func TestLockcheck(t *testing.T) {
	checktest.Run(t, lockcheck.Analyzer, "testdata", "c")
}
