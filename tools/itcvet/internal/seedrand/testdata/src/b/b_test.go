// Test files are exempt from seedrand: no want expectations here.
package b

import "math/rand"

func helperForTests() int {
	return rand.Intn(10)
}
