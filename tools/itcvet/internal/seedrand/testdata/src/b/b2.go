package b

import alias "math/rand"

// An aliased import is still resolved to math/rand.
func aliased() int {
	return alias.Intn(4) // want `alias\.Intn draws from the global generator`
}
