// Fixture for seedrand: global math/rand draws are flagged in non-test
// code; seeded *rand.Rand use and the constructors are not.
package b

import "math/rand"

func bad() {
	_ = rand.Intn(10)                  // want `rand\.Intn draws from the global generator`
	_ = rand.Int63()                   // want `rand\.Int63 draws from the global generator`
	_ = rand.Float64()                 // want `rand\.Float64 draws from the global generator`
	rand.Seed(1)                       // want `rand\.Seed draws from the global generator`
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle draws from the global generator`
	var p []byte
	_, _ = rand.Read(p) // want `rand\.Read draws from the global generator`
}

// The approved idiom: a generator built from the run seed, threaded to its
// consumer. Constructors are not global draws.
func good(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	_ = rand.NewZipf(r, 1.1, 1, 100)
	r.Shuffle(3, func(i, j int) {})
	return r.Intn(10)
}

var bootstrapID = rand.Int63() //itcvet:allow globalrand -- fixture: pre-run identifier
