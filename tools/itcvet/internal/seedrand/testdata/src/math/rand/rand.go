// Package rand is a fixture stub of math/rand: the global draws the
// analyzer bans plus the seeded-constructor surface it must leave alone.
package rand

type Source interface{ Int63() int64 }

func NewSource(seed int64) Source

type Rand struct{ src Source }

func New(src Source) *Rand

func (r *Rand) Int() int
func (r *Rand) Intn(n int) int
func (r *Rand) Int63() int64
func (r *Rand) Float64() float64
func (r *Rand) Perm(n int) []int
func (r *Rand) Shuffle(n int, swap func(i, j int))

type Zipf struct{}

func NewZipf(r *Rand, s, v float64, imax uint64) *Zipf

func Int() int
func Intn(n int) int
func Int31() int32
func Int63() int64
func Uint32() uint32
func Uint64() uint64
func Float32() float32
func Float64() float64
func ExpFloat64() float64
func NormFloat64() float64
func Perm(n int) []int
func Shuffle(n int, swap func(i, j int))
func Seed(seed int64)
func Read(p []byte) (n int, err error)
