package seedrand_test

import (
	"testing"

	"itcfs/tools/itcvet/internal/checktest"
	"itcfs/tools/itcvet/internal/seedrand"
)

func TestSeedrand(t *testing.T) {
	checktest.Run(t, seedrand.Analyzer, "testdata", "b")
}
