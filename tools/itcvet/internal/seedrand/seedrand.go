// Package seedrand forbids the global math/rand generator in non-test code.
//
// The global functions of math/rand (and math/rand/v2) draw from shared,
// implicitly seeded state: two call sites interleave differently depending
// on goroutine scheduling, and nothing ties the stream to the run's seed.
// Reproducible experiments need every random decision to come from a
// *rand.Rand constructed from the configured seed and threaded explicitly
// to its consumer — which is how the whole tree already works. This
// analyzer keeps it that way. Constructors (New, NewSource, NewZipf, NewPCG,
// NewChaCha8) and types are fine; the package-level draws are not.
//
// Test files are exempt: tests construct their own seeded generators, and
// the few that would not cannot perturb virtual time from outside a run.
package seedrand

import (
	"go/ast"

	"itcfs/tools/itcvet/internal/check"
)

// banned lists package-level math/rand and math/rand/v2 functions backed by
// the shared global generator.
var banned = map[string]bool{
	// math/rand
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 additions
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
	"Uint32N": true, "Uint64N": true,
}

// Analyzer is the seedrand pass.
var Analyzer = &check.Analyzer{
	Name:          "seedrand",
	Doc:           "forbid the global math/rand generator; thread a *rand.Rand from the run seed",
	Category:      "globalrand",
	SkipTestFiles: true,
	Run:           run,
}

func run(pass *check.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !banned[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkg := pass.PkgNameOf(id)
			if pkg == nil {
				return true
			}
			path := pkg.Imported().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			pass.Reportf(sel.Pos(),
				"%s.%s draws from the global generator; use a *rand.Rand seeded from the run configuration (//itcvet:allow globalrand -- why, if unavoidable)",
				id.Name, sel.Sel.Name)
			return true
		})
	}
}
