// Package check is the minimal analysis framework under itcvet's four
// analyzers. It plays the role golang.org/x/tools/go/analysis plays for
// ordinary vet tools — Analyzer, Pass, diagnostics — reimplemented on the
// standard library alone so the tree builds hermetically, with no module
// downloads. Facts and cross-package analysis are deliberately out of
// scope: every itcvet analyzer is a single-package pass.
//
// Suppression: a diagnostic is dropped when the flagged line, or the line
// directly above it, carries a comment of the form
//
//	//itcvet:allow <category> -- <justification>
//
// where <category> names the analyzer's diagnostic class (wallclock,
// globalrand, unguarded, maporder). The justification is free text for the
// reader; only the category is machine-checked. Unused allow annotations
// are themselves diagnosed, so stale escapes cannot accumulate.
package check

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one named check over a single type-checked package.
type Analyzer struct {
	Name string // short lower-case name, shown in diagnostics
	Doc  string // one-paragraph description

	// Category is the //itcvet:allow class that suppresses this
	// analyzer's diagnostics.
	Category string

	// SkipTestFiles excludes *_test.go files from the pass.
	SkipTestFiles bool

	Run func(*Pass)
}

// A Pass carries one package through one analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer *Analyzer
	sink     *[]Diagnostic
}

// A Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Analyzer string
	Category string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.sink = append(*p.sink, Diagnostic{
		Analyzer: p.analyzer.Name,
		Category: p.analyzer.Category,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file containing pos is a *_test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// PkgNameOf resolves ident to the imported package it names, or nil.
// Resolution goes through the type checker, so shadowed identifiers
// (a local variable named "time") never match.
func (p *Pass) PkgNameOf(ident *ast.Ident) *types.PkgName {
	if obj, ok := p.Info.Uses[ident].(*types.PkgName); ok {
		return obj
	}
	return nil
}

// allowSite is one //itcvet:allow comment: its position, category, and
// whether any diagnostic consumed it.
type allowSite struct {
	file     string
	line     int
	category string
	pos      token.Position
	used     bool
}

// collectAllows scans file comments for //itcvet:allow annotations.
func collectAllows(fset *token.FileSet, files []*ast.File) []*allowSite {
	var sites []*allowSite
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "itcvet:allow")
				if !ok {
					continue
				}
				// A longer directive sharing the prefix — itcvet:allowblocking,
				// owned by the lockorder analyzer — is not an itcvet:allow.
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue
				}
				if i := strings.Index(rest, "--"); i >= 0 {
					rest = rest[:i]
				}
				cat := ""
				if fields := strings.Fields(rest); len(fields) > 0 {
					cat = fields[0]
				}
				posn := fset.Position(c.Pos())
				sites = append(sites, &allowSite{
					file: posn.Filename, line: posn.Line, category: cat, pos: posn,
				})
			}
		}
	}
	return sites
}

// Run applies every analyzer to the package and returns surviving
// diagnostics: findings not covered by an allow annotation, plus one
// diagnostic per malformed or unused annotation.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	for _, a := range analyzers {
		passFiles := files
		if a.SkipTestFiles {
			passFiles = nil
			for _, f := range files {
				if !strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
					passFiles = append(passFiles, f)
				}
			}
		}
		pass := &Pass{Fset: fset, Files: passFiles, Pkg: pkg, Info: info, analyzer: a, sink: &raw}
		a.Run(pass)
	}

	allows := collectAllows(fset, files)
	allowed := func(d Diagnostic) bool {
		ok := false
		for _, s := range allows {
			if s.file == d.Pos.Filename && s.category == d.Category &&
				(s.line == d.Pos.Line || s.line == d.Pos.Line-1) {
				s.used = true
				ok = true
			}
		}
		return ok
	}

	var out []Diagnostic
	for _, d := range raw {
		if !allowed(d) {
			out = append(out, d)
		}
	}
	validCats := map[string]bool{}
	for _, a := range analyzers {
		validCats[a.Category] = true
	}
	for _, s := range allows {
		switch {
		case s.category == "" || !validCats[s.category]:
			out = append(out, Diagnostic{
				Analyzer: "itcvet", Category: "annotation", Pos: s.pos,
				Message: fmt.Sprintf("malformed itcvet:allow annotation: want //itcvet:allow <category> -- <why>, with category one of %s", catList(analyzers)),
			})
		case !s.used:
			out = append(out, Diagnostic{
				Analyzer: "itcvet", Category: "annotation", Pos: s.pos,
				Message: fmt.Sprintf("unused itcvet:allow %s annotation: nothing on this or the next line trips it", s.category),
			})
		}
	}
	return out
}

func catList(analyzers []*Analyzer) string {
	var cats []string
	for _, a := range analyzers {
		cats = append(cats, a.Category)
	}
	return strings.Join(cats, ", ")
}
