// Package mapiter flags map iteration whose order can escape.
//
// Go randomizes map iteration order on purpose; any byte that depends on it
// — wire encoding, trace or metrics export, aggregated error text — differs
// between two runs with identical seeds, which is exactly the property the
// whole evaluation forbids. The safe idiom, used throughout this tree, is
// collect-then-sort: range over the map only to gather keys or values into
// a slice, sort the slice, then emit from the slice.
//
// Within each range-over-map body the analyzer reports:
//
//   - calls to ordering-sensitive sinks: io-writer-shaped methods (Write,
//     WriteString, WriteByte, WriteRune, WriteTo, Flush), encoders (names
//     beginning Encode or Marshal, or Append in the append-to-buffer
//     encoder idiom), and the fmt Print/Fprint family;
//   - sends on channels, which publish elements in iteration order.
//
// It also tracks the collect half of collect-then-sort: a slice appended to
// inside the loop must be sorted somewhere in the same function (any
// sort.* or slices.* call mentioning it), otherwise the append is flagged —
// an unsorted collection is iteration order laundered through a slice.
// Aggregation into maps, numeric accumulation, counting, and existence
// checks are all order-insensitive and pass silently.
//
// The analysis is a per-function heuristic: a sink hidden behind a helper
// call is not seen, and a slice sorted by the caller instead of the
// collecting function needs an //itcvet:allow maporder annotation saying
// so. Test files are exempt.
package mapiter

import (
	"go/ast"
	"go/types"
	"strings"

	"itcfs/tools/itcvet/internal/check"
)

// Analyzer is the mapiter pass.
var Analyzer = &check.Analyzer{
	Name:          "mapiter",
	Doc:           "flag map iteration feeding ordering-sensitive sinks without an intervening sort",
	Category:      "maporder",
	SkipTestFiles: true,
	Run:           run,
}

// sinkMethods are method names that emit bytes or events in call order.
var sinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteTo": true, "Flush": true, "Fprint": true, "Fprintf": true,
	"Fprintln": true, "Print": true, "Printf": true, "Println": true,
}

func run(pass *check.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
}

// checkFunc scans one function body: every range-over-map inside it is
// audited, and collected slices are cleared by sort calls anywhere in the
// same body.
func checkFunc(pass *check.Pass, body *ast.BlockStmt) {
	type collected struct {
		rng  *ast.RangeStmt
		name *ast.Ident // slice appended to inside the loop
	}
	var appends []collected
	sorted := map[types.Object]bool{}

	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if obj := sortCallTarget(pass, call); obj != nil {
				sorted[obj] = true
			}
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.SendStmt:
				pass.Reportf(m.Pos(),
					"channel send inside iteration over a map publishes elements in nondeterministic order; collect into a slice and sort first")
			case *ast.CallExpr:
				if name, kind := sinkCall(pass, m); name != "" {
					pass.Reportf(m.Pos(),
						"%s %s called while iterating over a map: output order follows map iteration order; collect into a slice, sort, then emit (//itcvet:allow maporder -- why, if order provably cannot escape)",
						kind, name)
				}
				if id := appendTarget(m); id != nil {
					appends = append(appends, collected{rng, id})
				}
			}
			return true
		})
		return true
	})

	for _, c := range appends {
		obj := pass.Info.Uses[c.name]
		if obj == nil {
			obj = pass.Info.Defs[c.name]
		}
		if obj == nil || sorted[obj] {
			continue
		}
		pass.Reportf(c.name.Pos(),
			"%s collects values from a map iteration but is never sorted in this function; its element order is the map's iteration order (sort it, or //itcvet:allow maporder -- why order cannot escape)",
			c.name.Name)
	}
}

// sinkCall classifies call as an ordering-sensitive sink, returning a
// display name and kind, or "".
func sinkCall(pass *check.Pass, call *ast.CallExpr) (name, kind string) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		n := fun.Sel.Name
		if id, ok := fun.X.(*ast.Ident); ok {
			if pkg := pass.PkgNameOf(id); pkg != nil {
				// Qualified call: fmt.Fprintf and friends, pkg-level encoders.
				if pkg.Imported().Path() == "fmt" && sinkMethods[n] {
					return "fmt." + n, "print function"
				}
				if isEncoderName(n) {
					return pkg.Name() + "." + n, "encoder"
				}
				return "", ""
			}
		}
		if sinkMethods[n] {
			return n, "writer method"
		}
		if isEncoderName(n) {
			return n, "encoder method"
		}
	case *ast.Ident:
		// Unqualified package-level encoder helper — but never the
		// builtin append, which is the approved collect idiom.
		if _, isFunc := pass.Info.Uses[fun].(*types.Func); isFunc && isEncoderName(fun.Name) {
			return fun.Name, "encoder"
		}
	}
	return "", ""
}

// isEncoderName matches the tree's wire-encoding helper idiom.
func isEncoderName(n string) bool {
	return strings.HasPrefix(n, "Encode") || strings.HasPrefix(n, "Marshal") ||
		strings.HasPrefix(n, "Append") || strings.HasPrefix(n, "encode") ||
		strings.HasPrefix(n, "marshal") || strings.HasPrefix(n, "append")
}

// appendTarget recognizes append(x, ...) and returns the root identifier of
// x, the slice being grown.
func appendTarget(call *ast.CallExpr) *ast.Ident {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return nil
	}
	e := call.Args[0]
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			return x.Sel // field-held slice: track by field object
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// sortCallTarget reports the object sorted by call, if call is any sort.*
// or slices.* invocation mentioning a tracked identifier.
func sortCallTarget(pass *check.Pass, call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	pkg := pass.PkgNameOf(id)
	if pkg == nil {
		return nil
	}
	if p := pkg.Imported().Path(); p != "sort" && p != "slices" {
		return nil
	}
	for _, a := range call.Args {
		switch a := a.(type) {
		case *ast.Ident:
			if obj := pass.Info.Uses[a]; obj != nil {
				return obj
			}
		case *ast.SelectorExpr:
			if obj := pass.Info.Uses[a.Sel]; obj != nil {
				return obj
			}
		}
	}
	return nil
}
