// Fixture for mapiter: map iteration feeding writers, encoders, channels,
// and unsorted collections is flagged; collect-then-sort, aggregation and
// set-building are not.
package d

import (
	"fmt"
	"sort"
)

type buffer struct{ b []byte }

func (b *buffer) WriteString(s string) (int, error)
func (b *buffer) String() string

func badWriter(m map[string]int, buf *buffer) {
	for k := range m {
		buf.WriteString(k) // want `writer method WriteString called while iterating over a map`
	}
}

func badFprintf(m map[string]int, w any) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `print function fmt\.Fprintf called while iterating over a map`
	}
}

func badChannel(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside iteration over a map`
	}
}

func encodeU32(buf []byte, v uint32) []byte

func badEncode(m map[uint32]uint32, out []byte) []byte {
	for k := range m {
		out = encodeU32(out, k) // want `encoder encodeU32 called while iterating over a map`
	}
	return out
}

func badCollect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `keys collects values from a map iteration but is never sorted`
	}
	return keys
}

// The approved idiom: collect, sort, then emit from the slice.
func goodCollect(m map[string]int, buf *buffer) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		buf.WriteString(k)
	}
}

// sort.Slice counts too.
func goodCollectSlice(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// Commutative aggregation is order-insensitive.
func goodAggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Building another map is order-insensitive.
func goodInvert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Ranging over a slice is never the analyzer's business.
func goodSliceRange(names []string, buf *buffer) {
	for _, n := range names {
		buf.WriteString(n)
	}
}

func allowed(m map[string]int, buf *buffer) {
	for k := range m {
		//itcvet:allow maporder -- fixture: order provably cannot escape
		buf.WriteString(k)
	}
}
