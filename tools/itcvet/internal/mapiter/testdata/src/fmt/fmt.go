// Package fmt is a fixture stub: the print family mapiter treats as an
// ordering-sensitive sink.
package fmt

func Fprintf(w any, format string, a ...any) (int, error)
func Fprintln(w any, a ...any) (int, error)
func Sprintf(format string, a ...any) string
