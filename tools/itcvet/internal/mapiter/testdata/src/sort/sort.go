// Package sort is a fixture stub: the calls mapiter accepts as making a
// collected slice deterministic.
package sort

func Strings(x []string)
func Ints(x []int)
func Slice(x any, less func(i, j int) bool)
