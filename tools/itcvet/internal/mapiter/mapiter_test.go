package mapiter_test

import (
	"testing"

	"itcfs/tools/itcvet/internal/checktest"
	"itcfs/tools/itcvet/internal/mapiter"
)

func TestMapiter(t *testing.T) {
	checktest.Run(t, mapiter.Analyzer, "testdata", "d")
}
