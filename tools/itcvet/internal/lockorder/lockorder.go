// Package lockorder machine-checks the tree's lock acquisition discipline,
// the whole-program complement to lockcheck's per-field contracts.
//
// The analyzer treats every sync.Mutex / sync.RWMutex field of a struct
// declared in the package as a lock node, identified by type and field name
// (Server.mu, cbShard.mu) — all instances of a type share one node, which
// is exactly the granularity a lock-ordering discipline is stated at. For
// every function it tracks, along each control-flow path, which locks are
// held (seeded from //itcvet:holds entry states, exactly as lockcheck reads
// them), and builds an acquisition graph:
//
//	A -> B: some path acquires B while holding A,
//
// either directly (s.mu.Lock() under applyMu) or interprocedurally, through
// any chain of same-package calls (Reset holds the table lock and calls
// promisedCount, which takes the shard lock). Any cycle in the graph is a
// potential deadlock — two processes entering the cycle at different points
// each hold what the other needs — and is reported once, with the full
// acquisition chain and a witness position for every edge. `itcvet
// -lockgraph ./...` emits the merged graph for the whole module in a
// deterministic, diffable text form (see DESIGN.md §7).
//
// The analyzer also flags blocking operations performed while any tracked
// lock is held. A mutex in this tree protects maps and counters; a path
// that parks the holder — a channel send or receive, a select with no
// default, an RPC Call/CallBack, a Store.Commit/Checkpoint, an fsync
// (Sync), a durable replace (WriteFileAtomic), or socket frame I/O
// (wire.WriteFrame/ReadFrame, net.Conn reads and writes) — stalls every
// other path through that lock for an unbounded time, and under the WAL's
// group-commit protocol can deadlock outright. Genuinely intended waits
// (the WAL append that must stay inside applyMu so log order matches apply
// order) carry
//
//	//itcvet:allowblocking <why>
//
// on the flagged line or the line above. The why is free text for the
// reader; unused and empty annotations are themselves diagnosed, so stale
// escapes cannot accumulate. sync.Cond operations are exempt: Wait releases
// the paired mutex by contract.
//
// Approximations, chosen to avoid false positives rather than catch every
// bug: path merges keep only locks held on every incoming path (as
// lockcheck does); goroutine bodies, deferred function literals and
// function literals passed as arguments are analyzed with no locks held
// (asynchronous use); calls that cannot be resolved to a same-package
// declaration contribute no graph edges (the blocking check still sees
// them). Locks are conflated per type, so nesting two instances of the
// same type reports as a self-cycle — which is the conservative reading: a
// program that nests same-type locks needs an instance order the analyzer
// cannot see.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"itcfs/tools/itcvet/internal/check"
)

// Analyzer is the lockorder pass.
var Analyzer = &check.Analyzer{
	Name:     "lockorder",
	Doc:      "build the lock-acquisition graph, report cycles (potential deadlocks) and blocking calls made while a lock is held",
	Category: "lockorder",
	Run:      run,
}

// Key identifies one lock node: a mutex field of a named struct type.
type Key struct {
	Type  string // declaring type name
	Field string // mutex field name
}

func (k Key) String() string { return k.Type + "." + k.Field }

func keyLess(a, b Key) bool {
	if a.Type != b.Type {
		return a.Type < b.Type
	}
	return a.Field < b.Field
}

// Edge is one acquisition-order observation: some path acquires To while
// holding From. Pos is a witness site; Via names the function it is in
// (and, for interprocedural edges, the callee whose body acquires To).
type Edge struct {
	From, To Key
	Pos      token.Position
	Via      string
}

// Graph is a package's lock inventory and acquisition-order edges, the
// exported form the -lockgraph mode merges across packages.
type Graph struct {
	Nodes []Key  // every mutex field of every struct in the package, sorted
	Edges []Edge // deduplicated: one lexicographically-least witness per (From, To)
}

// holdsRE matches lockcheck's //itcvet:holds entry-state annotation.
var holdsRE = regexp.MustCompile(`^itcvet:holds ([A-Za-z_][A-Za-z0-9_]*)(\(read\))?$`)

// allowBlockingRE matches the blocking escape hatch; group 1 is the
// justification, which must be non-empty.
var allowBlockingRE = regexp.MustCompile(`^itcvet:allowblocking(.*)$`)

func run(pass *check.Pass) {
	a := newAnalysis(pass.Fset, pass.Files, pass.Pkg, pass.Info)
	a.analyze()

	// Blocking findings, filtered through //itcvet:allowblocking.
	allows := collectAllowBlocking(pass.Fset, pass.Files)
	for _, b := range a.blocking {
		posn := pass.Fset.Position(b.pos)
		if allowed(allows, posn) {
			continue
		}
		pass.Reportf(b.pos,
			"%s while %s is held; a blocked holder stalls every path through the lock (annotate //itcvet:allowblocking <why> if the wait is intended)",
			b.desc, b.held)
	}
	for _, s := range allows {
		switch {
		case !s.ok:
			pass.Reportf(s.pos,
				"malformed itcvet:allowblocking annotation: want //itcvet:allowblocking <why>, with a non-empty justification")
		case !s.used:
			pass.Reportf(s.pos,
				"unused itcvet:allowblocking annotation: nothing on this or the next line blocks under a lock")
		}
	}

	// Lock-order cycles over the package's merged graph.
	g := a.graph()
	for _, cyc := range Cycles(g) {
		pass.Reportf(a.edgePos[cyc.Edges[0]],
			"lock-order cycle (potential deadlock): %s", describeCycle(cyc))
	}
}

// BuildGraph extracts the package's lock graph without reporting anything;
// the -lockgraph mode calls it per package and merges.
func BuildGraph(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) Graph {
	a := newAnalysis(fset, files, pkg, info)
	a.analyze()
	return a.graph()
}

// Cycle is one elementary lock-order cycle: Edges[i].To == Edges[i+1].From
// and the last edge returns to the first node.
type Cycle struct {
	Edges []Edge
}

// describeCycle renders "A -> B (file:line, fn) -> A (file:line, fn)".
func describeCycle(c Cycle) string {
	var b strings.Builder
	b.WriteString(c.Edges[0].From.String())
	for _, e := range c.Edges {
		fmt.Fprintf(&b, " -> %s (%s:%d, %s)", e.To, filepath.Base(e.Pos.Filename), e.Pos.Line, e.Via)
	}
	return b.String()
}

// Cycles finds the elementary cycles of g, deterministically. Each strongly
// connected component contributes the cycles found by a DFS from its
// smallest node over sorted adjacency; for the disciplined graphs this tree
// maintains (acyclic, or nearly so) that reports every offending loop once,
// smallest entry node first.
func Cycles(g Graph) []Cycle {
	// Adjacency with the witness edge per (from, to).
	adj := map[Key][]Edge{}
	for _, e := range g.Edges {
		adj[e.From] = append(adj[e.From], e)
	}
	for k := range adj {
		es := adj[k]
		sort.Slice(es, func(i, j int) bool { return keyLess(es[i].To, es[j].To) })
	}
	var nodes []Key
	for _, n := range g.Nodes {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return keyLess(nodes[i], nodes[j]) })

	var out []Cycle
	seen := map[string]bool{} // canonical node sequence -> reported
	var stack []Edge
	onStack := map[Key]bool{}
	visited := map[Key]bool{}

	var dfs func(n Key)
	dfs = func(n Key) {
		onStack[n] = true
		for _, e := range adj[n] {
			if onStack[e.To] {
				// The stack suffix starting where e.To was entered, plus e,
				// is a cycle; a self-loop (e.From == e.To) is just [e].
				start := len(stack)
				for k := range stack {
					if stack[k].From == e.To {
						start = k
						break
					}
				}
				cyc := Cycle{Edges: append(append([]Edge(nil), stack[start:]...), e)}
				key := canonicalCycle(cyc)
				if !seen[key] {
					seen[key] = true
					out = append(out, cyc)
				}
				continue
			}
			if visited[e.To] {
				continue
			}
			stack = append(stack, e)
			dfs(e.To)
			stack = stack[:len(stack)-1]
		}
		onStack[n] = false
		visited[n] = true
	}
	for _, n := range nodes {
		if !visited[n] {
			dfs(n)
		}
	}
	return out
}

// canonicalCycle rotates the cycle's node sequence to start at its smallest
// node so the same loop found from two entry points deduplicates.
func canonicalCycle(c Cycle) string {
	n := len(c.Edges)
	best := ""
	for r := 0; r < n; r++ {
		var parts []string
		for i := 0; i < n; i++ {
			parts = append(parts, c.Edges[(r+i)%n].From.String())
		}
		s := strings.Join(parts, "->")
		if best == "" || s < best {
			best = s
		}
	}
	return best
}

// allowSite is one //itcvet:allowblocking comment.
type allowSite struct {
	file string
	line int
	pos  token.Pos
	ok   bool // has a non-empty justification
	used bool
}

func collectAllowBlocking(fset *token.FileSet, files []*ast.File) []*allowSite {
	var sites []*allowSite
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowBlockingRE.FindStringSubmatch(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")))
				if m == nil {
					continue
				}
				posn := fset.Position(c.Pos())
				sites = append(sites, &allowSite{
					file: posn.Filename, line: posn.Line, pos: c.Pos(),
					ok: strings.TrimSpace(m[1]) != "",
				})
			}
		}
	}
	return sites
}

func allowed(sites []*allowSite, posn token.Position) bool {
	ok := false
	for _, s := range sites {
		if s.ok && s.file == posn.Filename && (s.line == posn.Line || s.line == posn.Line-1) {
			s.used = true
			ok = true
		}
	}
	return ok
}

// blockFinding is one blocking operation performed with locks held.
type blockFinding struct {
	pos  token.Pos
	desc string
	held Key // one representative held lock (the smallest)
}

// callSite is one resolvable same-package call made with locks held.
type callSite struct {
	callee *types.Func
	pos    token.Pos
	held   []Key
}

// summary is the per-function analysis result.
type summary struct {
	directAcq map[Key]token.Pos // locks acquired in the body itself
	calls     []callSite
	allAcq    map[Key]bool // directAcq plus everything reachable callees acquire
	// blockDescs are the function's direct blocking operations, independent
	// of lock state — the caller-side check uses them for calls made under a
	// lock. Bounded to the first few for message brevity.
	blockDescs []string
	mayBlock   bool // blockDescs nonempty, here or in any reachable callee
}

// analysis carries one package through graph construction.
type analysis struct {
	fset  *token.FileSet
	files []*ast.File
	pkg   *types.Package
	info  *types.Info

	mutexes map[*types.TypeName]map[string]bool // struct -> mutex fields
	decls   map[*types.Func]*ast.FuncDecl
	sums    map[*types.Func]*summary

	edges    map[[2]Key]Edge     // deduplicated, least witness
	edgePos  map[Edge]token.Pos  // report position for cycle diagnostics
	blocking []blockFinding
}

func newAnalysis(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *analysis {
	return &analysis{
		fset: fset, files: files, pkg: pkg, info: info,
		mutexes: map[*types.TypeName]map[string]bool{},
		decls:   map[*types.Func]*ast.FuncDecl{},
		sums:    map[*types.Func]*summary{},
		edges:   map[[2]Key]Edge{},
		edgePos: map[Edge]token.Pos{},
	}
}

func (a *analysis) analyze() {
	a.collectMutexes()
	a.collectDecls()
	// Per-function intraprocedural pass.
	for fn, decl := range a.decls {
		a.sums[fn] = a.scanFunc(fn, decl)
	}
	// Fixed point: propagate acquisitions and blocking through calls.
	for changed := true; changed; {
		changed = false
		for _, sum := range a.sums {
			for _, c := range sum.calls {
				callee := a.sums[c.callee]
				if callee == nil {
					continue
				}
				for k := range callee.allAcq {
					if !sum.allAcq[k] {
						sum.allAcq[k] = true
						changed = true
					}
				}
				if callee.mayBlock && !sum.mayBlock {
					sum.mayBlock = true
					changed = true
				}
			}
		}
	}
	// Interprocedural edges and caller-side blocking findings.
	fns := make([]*types.Func, 0, len(a.sums))
	for fn := range a.sums {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
	for _, fn := range fns {
		sum := a.sums[fn]
		for _, c := range sum.calls {
			callee := a.sums[c.callee]
			if callee == nil || len(c.held) == 0 {
				continue
			}
			for _, from := range c.held {
				for to := range callee.allAcq {
					a.addEdge(from, to, c.pos, fmt.Sprintf("%s calls %s", funcName(fn), funcName(c.callee)))
				}
			}
			if callee.mayBlock {
				desc := "a blocking operation"
				if len(callee.blockDescs) > 0 {
					desc = callee.blockDescs[0]
				} else {
					// Blocking somewhere deeper; name the chain head.
					for _, cc := range callee.calls {
						if s := a.sums[cc.callee]; s != nil && s.mayBlock {
							desc = fmt.Sprintf("a blocking operation via %s", funcName(cc.callee))
							break
						}
					}
				}
				a.blocking = append(a.blocking, blockFinding{
					pos:  c.pos,
					desc: fmt.Sprintf("call to %s performs %s", funcName(c.callee), desc),
					held: c.held[0],
				})
			}
		}
	}
	sort.Slice(a.blocking, func(i, j int) bool { return a.blocking[i].pos < a.blocking[j].pos })
}

func funcName(fn *types.Func) string {
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if tn := namedOf(recv.Type()); tn != nil {
			return tn.Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

func (a *analysis) addEdge(from, to Key, pos token.Pos, via string) {
	e := Edge{From: from, To: to, Pos: a.fset.Position(pos), Via: via}
	k := [2]Key{from, to}
	if old, ok := a.edges[k]; ok && witnessLess(old, e) {
		return
	}
	a.edges[k] = e
	a.edgePos[e] = pos
}

// witnessLess orders candidate witnesses for the same (from, to) pair so the
// kept one is deterministic whatever the scan order.
func witnessLess(x, y Edge) bool {
	if x.Pos.Filename != y.Pos.Filename {
		return x.Pos.Filename < y.Pos.Filename
	}
	if x.Pos.Offset != y.Pos.Offset {
		return x.Pos.Offset < y.Pos.Offset
	}
	return x.Via < y.Via
}

func (a *analysis) graph() Graph {
	g := Graph{}
	var nodes []Key
	for tn, fields := range a.mutexes {
		for f := range fields {
			nodes = append(nodes, Key{Type: tn.Name(), Field: f})
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return keyLess(nodes[i], nodes[j]) })
	g.Nodes = nodes
	for _, e := range a.edges {
		g.Edges = append(g.Edges, e)
	}
	sort.Slice(g.Edges, func(i, j int) bool {
		x, y := g.Edges[i], g.Edges[j]
		if x.From != y.From {
			return keyLess(x.From, y.From)
		}
		return keyLess(x.To, y.To)
	})
	return g
}

// collectMutexes finds every sync.Mutex / sync.RWMutex field of every
// struct declared in the package.
func (a *analysis) collectMutexes() {
	for _, f := range a.files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			tn, _ := a.info.Defs[ts.Name].(*types.TypeName)
			if tn == nil {
				return true
			}
			for _, fld := range st.Fields.List {
				if !isMutexType(a.info.TypeOf(fld.Type)) {
					continue
				}
				for _, name := range fld.Names {
					m := a.mutexes[tn]
					if m == nil {
						m = map[string]bool{}
						a.mutexes[tn] = m
					}
					m[name.Name] = true
				}
			}
			return true
		})
	}
}

func (a *analysis) collectDecls() {
	for _, f := range a.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := a.info.Defs[fd.Name].(*types.Func); ok {
				a.decls[fn] = fd
			}
		}
	}
}

// scanFunc runs the intraprocedural pass over one declaration.
func (a *analysis) scanFunc(fn *types.Func, decl *ast.FuncDecl) *summary {
	sum := &summary{directAcq: map[Key]token.Pos{}, allAcq: map[Key]bool{}}
	w := &walker{a: a, sum: sum}
	st := a.entryState(fn, decl)
	w.block(decl.Body.List, st)
	for k := range sum.directAcq {
		sum.allAcq[k] = true
	}
	sum.mayBlock = len(sum.blockDescs) > 0
	return sum
}

// entryState seeds the held set from //itcvet:holds annotations, resolving
// the named lock against the receiver's type.
func (a *analysis) entryState(fn *types.Func, decl *ast.FuncDecl) state {
	st := state{}
	if decl.Doc == nil || decl.Recv == nil {
		return st
	}
	recvTN := namedOf(fn.Type().(*types.Signature).Recv().Type())
	if recvTN == nil {
		return st
	}
	fields := a.mutexes[recvTN]
	for _, c := range decl.Doc.List {
		m := holdsRE.FindStringSubmatch(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")))
		if m == nil || !fields[m[1]] {
			continue
		}
		st[Key{Type: recvTN.Name(), Field: m[1]}] = true
	}
	return st
}

// state is the set of locks held on the current path.
type state map[Key]bool

func (s state) clone() state {
	out := state{}
	for k := range s {
		out[k] = true
	}
	return out
}

// meet keeps locks held on both paths (must-hold).
func meet(a, b state) state {
	out := state{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// heldKeys returns the sorted held set.
func (s state) heldKeys() []Key {
	out := make([]Key, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return keyLess(out[i], out[j]) })
	return out
}

// walker walks one function body tracking the held set.
type walker struct {
	a   *analysis
	sum *summary
}

func (w *walker) block(list []ast.Stmt, st state) state {
	for _, s := range list {
		st = w.stmt(s, st)
	}
	return st
}

func (w *walker) stmt(s ast.Stmt, st state) state {
	switch s := s.(type) {
	case nil:
		return st
	case *ast.ExprStmt:
		if key, op, ok := w.a.lockOp(s.X); ok {
			return w.apply(st, key, op, s.X.Pos())
		}
		w.expr(s.X, st)
	case *ast.DeferStmt:
		if _, _, ok := w.a.lockOp(s.Call); ok {
			return st // deferred unlock fires at exit; no change now
		}
		// Deferred work runs at exit with unknowable lock state: analyze the
		// callee body (if a literal) with nothing held, and scan arguments.
		for _, arg := range s.Call.Args {
			w.expr(arg, st)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.block(fl.Body.List, state{})
		}
	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			w.expr(arg, st)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.block(fl.Body.List, state{}) // the goroutine holds nothing
		}
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.expr(r, st)
		}
		for _, l := range s.Lhs {
			w.expr(l, st)
		}
	case *ast.IncDecStmt:
		w.expr(s.X, st)
	case *ast.IfStmt:
		st = w.stmt(s.Init, st)
		w.expr(s.Cond, st)
		thenOut := w.block(s.Body.List, st.clone())
		elseOut := st.clone()
		if s.Else != nil {
			elseOut = w.stmt(s.Else, st.clone())
		}
		thenDead := terminates(s.Body.List)
		elseDead := s.Else != nil && terminatesStmt(s.Else)
		switch {
		case thenDead && elseDead:
			return st
		case thenDead:
			return elseOut
		case elseDead:
			return thenOut
		default:
			return meet(thenOut, elseOut)
		}
	case *ast.ForStmt:
		st = w.stmt(s.Init, st)
		if s.Cond != nil {
			w.expr(s.Cond, st)
		}
		bodyOut := w.block(s.Body.List, st.clone())
		bodyOut = w.stmt(s.Post, bodyOut)
		return meet(st, bodyOut)
	case *ast.RangeStmt:
		w.expr(s.X, st)
		bodyOut := w.block(s.Body.List, st.clone())
		return meet(st, bodyOut)
	case *ast.SwitchStmt:
		st = w.stmt(s.Init, st)
		if s.Tag != nil {
			w.expr(s.Tag, st)
		}
		return w.clauses(s.Body.List, st)
	case *ast.TypeSwitchStmt:
		st = w.stmt(s.Init, st)
		w.stmt(s.Assign, st)
		return w.clauses(s.Body.List, st)
	case *ast.SelectStmt:
		w.selectStmt(s, st)
		return w.clauses(s.Body.List, st)
	case *ast.BlockStmt:
		return w.block(s.List, st.clone())
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, st)
		}
	case *ast.SendStmt:
		w.blockingOp(s.Pos(), "channel send", st)
		w.expr(s.Chan, st)
		w.expr(s.Value, st)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, st)
					}
				}
			}
		}
	}
	return st
}

// selectStmt flags a select with no default: every arm can park the holder.
func (w *walker) selectStmt(s *ast.SelectStmt, st state) {
	for _, cl := range s.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return // default case: the select cannot block
		}
	}
	w.blockingOp(s.Pos(), "select with no default", st)
}

// clauses merges switch/select case bodies (weakest common held set).
func (w *walker) clauses(list []ast.Stmt, st state) state {
	outs := []state{}
	hasDefault := false
	for _, cl := range list {
		var body []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				w.expr(e, st)
			}
			hasDefault = hasDefault || cl.List == nil
			body = cl.Body
		case *ast.CommClause:
			// The comm statement itself is not re-classified as blocking: the
			// enclosing select already was (if it had no default), and a comm
			// op chosen by a ready select does not park the holder.
			hasDefault = hasDefault || cl.Comm == nil
			out := w.block(cl.Body, st.clone())
			if !terminates(cl.Body) {
				outs = append(outs, out)
			}
			continue
		}
		out := w.block(body, st.clone())
		if !terminates(body) {
			outs = append(outs, out)
		}
	}
	if !hasDefault || len(outs) == 0 {
		outs = append(outs, st)
	}
	merged := outs[0]
	for _, o := range outs[1:] {
		merged = meet(merged, o)
	}
	return merged
}

func (w *walker) apply(st state, key Key, op string, pos token.Pos) state {
	st = st.clone()
	switch op {
	case "Lock", "RLock":
		for held := range st {
			w.a.addEdge(held, key, pos, w.curFunc(pos))
		}
		if _, ok := w.sum.directAcq[key]; !ok {
			w.sum.directAcq[key] = pos
		}
		st[key] = true
	case "Unlock", "RUnlock":
		delete(st, key)
	}
	return st
}

// curFunc names the enclosing function for edge labels; walker is built per
// function, so record it lazily from the analysis decl map.
func (w *walker) curFunc(pos token.Pos) string {
	for fn, decl := range w.a.decls {
		if decl.Body != nil && decl.Pos() <= pos && pos <= decl.End() {
			return funcName(fn)
		}
	}
	return "func"
}

// expr scans an expression for lock operations, blocking operations and
// resolvable calls. Expressions do not change the held set (lock calls in
// expression position would; none exist in this tree and meet-conservatism
// tolerates missing them).
func (w *walker) expr(e ast.Expr, st state) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		if key, op, ok := w.a.lockOp(e); ok {
			// A lock op in expression position (rare); record the edge but
			// leave flow to the statement walker.
			_ = w.apply(st, key, op, e.Pos())
			return
		}
		w.call(e, st)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			w.blockingOp(e.Pos(), "channel receive", st)
		}
		w.expr(e.X, st)
	case *ast.FuncLit:
		w.block(e.Body.List, state{}) // treated as asynchronous: holds nothing
	case *ast.SelectorExpr:
		w.expr(e.X, st)
	case *ast.StarExpr:
		w.expr(e.X, st)
	case *ast.ParenExpr:
		w.expr(e.X, st)
	case *ast.IndexExpr:
		w.expr(e.X, st)
		w.expr(e.Index, st)
	case *ast.SliceExpr:
		w.expr(e.X, st)
		w.expr(e.Low, st)
		w.expr(e.High, st)
		w.expr(e.Max, st)
	case *ast.BinaryExpr:
		w.expr(e.X, st)
		w.expr(e.Y, st)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.expr(el, st)
		}
	case *ast.KeyValueExpr:
		w.expr(e.Key, st)
		w.expr(e.Value, st)
	case *ast.TypeAssertExpr:
		w.expr(e.X, st)
	}
}

// call handles one non-lock call: classify blocking, record resolvable
// same-package callees, scan arguments.
func (w *walker) call(e *ast.CallExpr, st state) {
	if desc, ok := w.a.blockingCall(e); ok {
		w.blockingOp(e.Pos(), desc, st)
	}
	if fn := w.a.calleeOf(e); fn != nil {
		w.sum.calls = append(w.sum.calls, callSite{callee: fn, pos: e.Pos(), held: st.heldKeys()})
	}
	w.expr(e.Fun, st)
	for _, arg := range e.Args {
		w.expr(arg, st)
	}
}

func (w *walker) blockingOp(pos token.Pos, desc string, st state) {
	if len(w.sum.blockDescs) < 3 {
		w.sum.blockDescs = append(w.sum.blockDescs, desc)
	}
	held := st.heldKeys()
	if len(held) == 0 {
		return
	}
	w.a.blocking = append(w.a.blocking, blockFinding{pos: pos, desc: desc, held: held[0]})
}

// lockOp recognizes expr.<mutexfield>.Lock() and friends, where expr's
// static type is a struct declared in this package with that mutex field.
func (a *analysis) lockOp(e ast.Expr) (Key, string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return Key{}, "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return Key{}, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return Key{}, "", false
	}
	field, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return Key{}, "", false
	}
	ownerTN := namedOf(a.info.TypeOf(field.X))
	if ownerTN == nil || ownerTN.Pkg() != a.pkg {
		return Key{}, "", false
	}
	if !a.mutexes[ownerTN][field.Sel.Name] {
		return Key{}, "", false
	}
	return Key{Type: ownerTN.Name(), Field: field.Sel.Name}, sel.Sel.Name, true
}

// calleeOf resolves a call to a function or method declared in this package.
func (a *analysis) calleeOf(e *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(e.Fun).(type) {
	case *ast.Ident:
		obj = a.info.Uses[fun]
	case *ast.SelectorExpr:
		obj = a.info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() != a.pkg {
		return nil
	}
	if _, hasDecl := a.decls[fn]; !hasDecl {
		return nil
	}
	return fn
}

// blockingCall classifies calls that can park the calling process.
func (a *analysis) blockingCall(e *ast.CallExpr) (string, bool) {
	switch fun := ast.Unparen(e.Fun).(type) {
	case *ast.Ident:
		// wire.WriteFrame / wire.ReadFrame imported dot-free only; plain
		// idents are same-package helpers, classified via their own bodies.
		return "", false
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		// Package-level socket frame I/O: wire.WriteFrame / wire.ReadFrame.
		if obj, ok := a.info.Uses[fun.Sel].(*types.Func); ok && obj.Type().(*types.Signature).Recv() == nil {
			if (name == "WriteFrame" || name == "ReadFrame") && obj.Pkg() != nil && obj.Pkg().Name() == "wire" {
				return "socket frame I/O (" + name + ")", true
			}
			return "", false
		}
		recvTN := namedOf(a.info.TypeOf(fun.X))
		// sync.Cond is exempt: Wait releases the paired mutex by contract.
		if recvTN != nil && recvTN.Pkg() != nil && recvTN.Pkg().Path() == "sync" {
			return "", false
		}
		switch name {
		case "Call", "CallBack":
			return "RPC " + name, true
		case "Sync":
			return "fsync (Sync)", true
		case "WriteFileAtomic":
			return "durable replace (WriteFileAtomic)", true
		case "Commit", "Checkpoint":
			if storeLike(recvTN) {
				return "durable store " + name, true
			}
		case "Read", "Write":
			if recvTN != nil && recvTN.Pkg() != nil && recvTN.Pkg().Path() == "net" {
				return "net.Conn " + name, true
			}
		}
	}
	return "", false
}

// storeLike reports whether tn is a durable-store type: named Store, or
// declared in a package whose name says store.
func storeLike(tn *types.TypeName) bool {
	if tn == nil {
		return false
	}
	if tn.Name() == "Store" {
		return true
	}
	if pkg := tn.Pkg(); pkg != nil && strings.Contains(pkg.Name(), "store") {
		return true
	}
	return false
}

func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	tn := namedOf(t)
	if tn == nil || tn.Pkg() == nil || tn.Pkg().Path() != "sync" {
		return false
	}
	return tn.Name() == "Mutex" || tn.Name() == "RWMutex"
}

// namedOf returns the *types.TypeName behind t, unwrapping one pointer.
func namedOf(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// terminatesStmt reports whether control cannot flow past s.
func terminatesStmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(s.List)
	case *ast.IfStmt:
		return terminates(s.Body.List) && s.Else != nil && terminatesStmt(s.Else)
	case *ast.LabeledStmt:
		return terminatesStmt(s.Stmt)
	}
	return false
}

func terminates(list []ast.Stmt) bool {
	return len(list) > 0 && terminatesStmt(list[len(list)-1])
}
