package lockorder_test

import (
	"testing"

	"itcfs/tools/itcvet/internal/checktest"
	"itcfs/tools/itcvet/internal/lockorder"
)

func TestBlocking(t *testing.T) {
	checktest.Run(t, lockorder.Analyzer, "testdata", "lo")
}

func TestCycle(t *testing.T) {
	checktest.Run(t, lockorder.Analyzer, "testdata", "cycle")
}
