// Package cycle seeds one lock-order inversion: one() acquires B.mu under
// A.mu directly, two() acquires A.mu under B.mu through a call.
package cycle

import "sync"

type A struct {
	mu sync.Mutex // guarded by mu
	n  int
}

type B struct {
	mu sync.Mutex // guarded by mu
	n  int
}

func one(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want `lock-order cycle \(potential deadlock\): A\.mu -> B\.mu \(cycle\.go:\d+, one\) -> A\.mu \(cycle\.go:\d+, two calls touchA\)`
	b.n++
	b.mu.Unlock()
	a.mu.Unlock()
}

func touchA(a *A) {
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
}

func two(a *A, b *B) {
	b.mu.Lock()
	touchA(a)
	b.mu.Unlock()
}

// consistent nests the same pair in one order only elsewhere: no extra
// cycle beyond the one above, and no blocking findings anywhere here.
func consistent(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // second witness for A.mu -> B.mu; deduplicated, no new report
	b.n--
	b.mu.Unlock()
	a.mu.Unlock()
}
