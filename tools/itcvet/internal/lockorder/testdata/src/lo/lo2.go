package lo

import "sync"

// Q waits on a condition variable: Cond.Wait releases the paired mutex by
// contract, so it is exempt from the blocking check.
type Q struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int // guarded by mu
}

func (q *Q) take() {
	q.mu.Lock()
	for q.n == 0 {
		q.cond.Wait() // exempt: no finding
	}
	q.n--
	q.cond.Signal()
	q.mu.Unlock()
}

// Inner is nested under T.mu in one consistent order via an //itcvet:holds
// entry state: an edge, not a cycle, so no diagnostic.
type Inner struct {
	mu sync.Mutex
	n  int // guarded by mu
}

type T struct {
	mu    sync.Mutex
	inner Inner
}

// bump is called with t.mu held.
//
//itcvet:holds mu
func (t *T) bump() {
	t.inner.mu.Lock()
	t.inner.n++
	t.inner.mu.Unlock()
}

// R read-locks around a map read; RLock/RUnlock track like Lock/Unlock.
type R struct {
	mu sync.RWMutex
	m  map[int]int // guarded by mu
}

func (r *R) get(k int) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[k]
}
