// Package lo exercises the blocking-while-locked check: every class of
// blocking operation under a held mutex, the //itcvet:allowblocking escape
// hatch (used, unused, malformed), and the exemptions (sync.Cond, goroutine
// bodies, select arms, unlocked paths).
package lo

import "sync"

type A struct {
	mu sync.Mutex // guarded by mu
	n  int        // guarded by mu
}

type Peer struct{}

func (*Peer) Call(op string) error

type Store struct{}

func (*Store) Commit() error

type File struct{}

func (File) Sync() error

type FS struct{}

func (FS) WriteFileAtomic(name string, data []byte) error

func send(a *A, ch chan int) {
	a.mu.Lock()
	ch <- 1 // want `channel send while A\.mu is held`
	a.mu.Unlock()
}

func sendAllowed(a *A, ch chan int) {
	a.mu.Lock()
	//itcvet:allowblocking capacity-1 channel drained by a dedicated process
	ch <- 1
	a.mu.Unlock()
}

func recv(a *A, ch chan int) {
	a.mu.Lock()
	<-ch // want `channel receive while A\.mu is held`
	a.mu.Unlock()
}

func recvAfterUnlock(a *A, ch chan int) {
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
	<-ch // unlocked: no finding
}

func wait(a *A, ch chan int, stop chan struct{}) {
	a.mu.Lock()
	select { // want `select with no default while A\.mu is held`
	case <-ch:
	case <-stop:
	}
	a.mu.Unlock()
}

func poll(a *A, ch chan int) {
	a.mu.Lock()
	select { // a default arm cannot park the holder: no finding
	case <-ch:
	default:
	}
	a.mu.Unlock()
}

func rpc(a *A, p *Peer) {
	a.mu.Lock()
	_ = p.Call("ping") // want `RPC Call while A\.mu is held`
	a.mu.Unlock()
}

func commit(a *A, st *Store) {
	a.mu.Lock()
	_ = st.Commit() // want `durable store Commit while A\.mu is held`
	a.mu.Unlock()
}

func fsync(a *A, f File) {
	a.mu.Lock()
	_ = f.Sync() // want `fsync \(Sync\) while A\.mu is held`
	a.mu.Unlock()
}

func replace(a *A, fs FS) {
	a.mu.Lock()
	_ = fs.WriteFileAtomic("loc.db", nil) // want `durable replace \(WriteFileAtomic\) while A\.mu is held`
	a.mu.Unlock()
}

func blockHelper(ch chan int) int { return <-ch }

func callsBlocker(a *A, ch chan int) {
	a.mu.Lock()
	_ = blockHelper(ch) // want `call to blockHelper performs channel receive while A\.mu is held`
	a.mu.Unlock()
}

func spawn(a *A, ch chan int) {
	a.mu.Lock()
	go func() { ch <- 1 }() // the goroutine holds nothing: no finding
	a.n++
	a.mu.Unlock()
}

func stale(a *A) {
	a.mu.Lock()
	//itcvet:allowblocking nothing here blocks // want `unused itcvet:allowblocking annotation`
	a.n++
	a.mu.Unlock()
}

func bare(a *A, ch chan int) {
	a.mu.Lock()
	/* want `malformed itcvet:allowblocking annotation` */ //itcvet:allowblocking
	ch <- 1 // want `channel send while A\.mu is held`
	a.mu.Unlock()
}
