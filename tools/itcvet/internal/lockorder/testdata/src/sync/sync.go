// Package sync is a fixture stub: the mutex and condition-variable surface
// lockorder recognizes.
package sync

type Mutex struct{ state int32 }

func (m *Mutex) Lock()
func (m *Mutex) Unlock()

type RWMutex struct{ state int32 }

func (m *RWMutex) Lock()
func (m *RWMutex) Unlock()
func (m *RWMutex) RLock()
func (m *RWMutex) RUnlock()

type Locker interface {
	Lock()
	Unlock()
}

type Cond struct{ L Locker }

func NewCond(l Locker) *Cond
func (c *Cond) Wait()
func (c *Cond) Signal()
func (c *Cond) Broadcast()
