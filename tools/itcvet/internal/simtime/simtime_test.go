package simtime_test

import (
	"testing"

	"itcfs/tools/itcvet/internal/checktest"
	"itcfs/tools/itcvet/internal/simtime"
)

func TestSimtime(t *testing.T) {
	checktest.Run(t, simtime.Analyzer, "testdata", "a")
}
