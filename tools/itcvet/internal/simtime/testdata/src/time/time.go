// Package time is a fixture stub: just enough of the real package's
// surface for the simtime tests to type-check against.
package time

type Time struct{ sec int64 }

type Duration int64

const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

func (t Time) UnixNano() int64     { return t.sec }
func (t Time) Add(d Duration) Time { return t }

func Now() Time
func Sleep(d Duration)
func After(d Duration) <-chan Time
func AfterFunc(d Duration, f func()) *Timer
func Tick(d Duration) <-chan Time
func Since(t Time) Duration
func Until(t Time) Duration

type Timer struct{ C <-chan Time }

func NewTimer(d Duration) *Timer

type Ticker struct{ C <-chan Time }

func NewTicker(d Duration) *Ticker
