// Fixture for simtime: wall-clock reads are flagged, virtual-time-safe
// uses of package time are not, and the annotation escape hatch works.
package a

import "time"

var clockFn = time.Now // want `time\.Now reads the wall clock`

func bad() int64 {
	t := time.Now()         // want `time\.Now reads the wall clock`
	time.Sleep(time.Second) // want `time\.Sleep reads the wall clock`
	select {
	case <-time.After(time.Second): // want `time\.After reads the wall clock`
	}
	_ = time.NewTimer(time.Second)             // want `time\.NewTimer reads the wall clock`
	_ = time.NewTicker(time.Second)            // want `time\.NewTicker reads the wall clock`
	_ = time.Tick(time.Second)                 // want `time\.Tick reads the wall clock`
	_ = time.AfterFunc(time.Second, func() {}) // want `time\.AfterFunc reads the wall clock`
	_ = time.Since(t)                          // want `time\.Since reads the wall clock`
	_ = time.Until(t)                          // want `time\.Until reads the wall clock`
	return t.UnixNano()
}

// Duration arithmetic and formatting stay legal: only clock reads couple a
// run to the host.
func fine(d time.Duration) time.Duration {
	return d + time.Second + 3*time.Millisecond
}

type fakeClock struct{}

func (fakeClock) Now() int { return 0 }

// A local identifier shadowing the package does not confuse resolution.
func shadowed() int {
	time := fakeClock{}
	return time.Now()
}

func allowedAbove() time.Time {
	//itcvet:allow wallclock -- fixture: a deliberate wall-clock site
	return time.Now()
}

func allowedInline() time.Time {
	return time.Now() //itcvet:allow wallclock -- fixture: same-line escape
}

func staleAllow() {
	//itcvet:allow wallclock -- stale // want `unused itcvet:allow wallclock`
}

//itcvet:allow nosuchcategory // want `malformed itcvet:allow`
func typoAllow() {}
