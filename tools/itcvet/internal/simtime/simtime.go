// Package simtime forbids reading the wall clock in deterministic code.
//
// Every experiment in this tree runs on virtual time: the simulation kernel
// is the only clock, so identical seeds replay identical schedules. One
// stray time.Now or time.Sleep couples the run to the host scheduler and
// silently breaks that property — and nothing at build or test time would
// notice. This analyzer turns the convention into a machine-checked rule:
// wall-clock functions of package time are banned everywhere, and the few
// genuinely wall-clock sites (the TCP transport, the command-line daemons)
// carry an explicit //itcvet:allow wallclock annotation that names them as
// deliberate.
//
// Referencing one of the banned functions is flagged even when it is not
// called (assigning time.Now to a clock variable smuggles the wall clock
// just as effectively as calling it).
package simtime

import (
	"go/ast"

	"itcfs/tools/itcvet/internal/check"
)

// banned lists the package time functions that read or wait on the wall
// clock. Types, constants and pure arithmetic (Duration, Unix, Date
// construction) stay usable.
var banned = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

// Analyzer is the simtime pass.
var Analyzer = &check.Analyzer{
	Name:     "simtime",
	Doc:      "forbid wall-clock time functions outside annotated wall-clock sites",
	Category: "wallclock",
	Run:      run,
}

func run(pass *check.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !banned[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkg := pass.PkgNameOf(id)
			if pkg == nil || pkg.Imported().Path() != "time" {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock; deterministic code must take its clock from the simulation kernel (annotate genuine wall-clock sites with //itcvet:allow wallclock -- why)",
				sel.Sel.Name)
			return true
		})
	}
}
