package driftcheck_test

import (
	"testing"

	"itcfs/tools/itcvet/internal/checktest"
	"itcfs/tools/itcvet/internal/driftcheck"
)

func TestFuzzAndMutexDrift(t *testing.T) {
	checktest.Run(t, driftcheck.Analyzer, "testdata", "dr")
}

func TestCodecPairs(t *testing.T) {
	checktest.Run(t, driftcheck.Analyzer, "testdata", "wire")
}

func TestCanonicalNames(t *testing.T) {
	checktest.Run(t, driftcheck.Analyzer, "testdata", "obs")
}
