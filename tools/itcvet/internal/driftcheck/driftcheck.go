// Package driftcheck detects coverage drift: the gap that opens when code
// grows a new surface but the harness that was supposed to exercise it is
// never told.
//
// Four invariants, each cheap to state and easy to silently lose:
//
//  1. Every Fuzz* target is exercised by ci.sh. A fuzz function that is not
//     in the CI fuzz gate runs zero iterations forever; the check word-
//     matches each target's name against the ci.sh found at the module
//     root (walking up from the package directory, never past a directory
//     named "testdata", so fixture modules bring their own ci.sh).
//
//  2. Every Encode has a Decode and a round-trip test. In the codec
//     packages (wire, proto), an exported EncodeX function must have a
//     DecodeX counterpart, a method (T) Encode must have a DecodeT, and
//     the decoder's name must appear in some *_test.go in the package —
//     the cheapest possible witness that a round-trip test exists. An
//     encoder without a decoder is a write-only format; one without a
//     round-trip test is a format whose compatibility nobody checks.
//
//  3. Every mutex-owning struct states its contract. A sync.Mutex or
//     sync.RWMutex field must either be named by at least one sibling
//     field's "guarded by <mu>" comment (lockcheck then enforces it) or
//     carry its own comment saying what it serializes/guards. An
//     uncontracted mutex is invisible to lockcheck and lockorder's holds
//     annotations — exactly the state the MemFS and FaultFS mutexes had
//     drifted into when this check was written.
//
//  4. Every metric and flight-event name is canonical. Outside
//     internal/trace (where the tables live), the first argument to
//     Registry.Counter/Gauge/Histogram/FindHistogram/Striped and
//     Recorder.Log must not be a raw string literal: a name minted at the
//     call site is invisible to the canonical tables in names.go, so
//     dashboards, the SLO layer and the conformance tests silently stop
//     agreeing on one spelling. Composed names (VolOpsMetric(v),
//     "net."+link+".frames") and named constants pass; test files are
//     exempt — tests mint ad-hoc names freely.
//
// Findings carry category "drift" for the standard //itcvet:allow hatch.
package driftcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"itcfs/tools/itcvet/internal/check"
)

// Analyzer is the driftcheck pass.
var Analyzer = &check.Analyzer{
	Name:     "driftcheck",
	Doc:      "coverage drift: Fuzz* targets absent from ci.sh, Encode* without Decode*/round-trip tests in wire and proto, mutexes without a guarded-by contract, metric/flight-event names minted as literals outside internal/trace's canonical tables",
	Category: "drift",
	Run:      run,
}

// codecPkgs are the packages whose Encode/Decode surface is paired.
var codecPkgs = map[string]bool{"wire": true, "proto": true}

func run(pass *check.Pass) {
	checkFuzzTargets(pass)
	if codecPkgs[pass.Pkg.Name()] {
		checkCodecPairs(pass)
	}
	checkMutexContracts(pass)
	checkCanonicalNames(pass)
}

// --- invariant 1: fuzz targets vs ci.sh -------------------------------

func checkFuzzTargets(pass *check.Pass) {
	type target struct {
		decl *ast.FuncDecl
		dir  string
	}
	var targets []target
	for _, f := range pass.Files {
		posn := pass.Fset.Position(f.Pos())
		if !strings.HasSuffix(posn.Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || !strings.HasPrefix(fd.Name.Name, "Fuzz") {
				continue
			}
			targets = append(targets, target{fd, filepath.Dir(posn.Filename)})
		}
	}
	if len(targets) == 0 {
		return
	}
	ciCache := map[string]string{}
	for _, t := range targets {
		ci, ok := ciCache[t.dir]
		if !ok {
			ci = readCI(t.dir)
			ciCache[t.dir] = ci
		}
		if ci == "" {
			continue // no ci.sh governs this module; nothing to drift from
		}
		if !regexp.MustCompile(`\b` + regexp.QuoteMeta(t.decl.Name.Name) + `\b`).MatchString(ci) {
			pass.Reportf(t.decl.Pos(),
				"fuzz target %s is not exercised by ci.sh; a fuzz function missing from the CI gate runs zero iterations forever", t.decl.Name.Name)
		}
	}
}

// readCI walks up from dir to the module root (go.mod) and returns that
// directory's ci.sh, or "" if either is missing. The walk never ascends
// out of a directory named "testdata": fixture packages must bring their
// own module, not inherit the real repo's gate.
func readCI(dir string) string {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			b, err := os.ReadFile(filepath.Join(dir, "ci.sh"))
			if err != nil {
				return ""
			}
			return string(b)
		}
		if filepath.Base(dir) == "testdata" {
			return ""
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}

// --- invariant 2: Encode/Decode pairing and round-trip tests ----------

func checkCodecPairs(pass *check.Pass) {
	// encoder name -> required decoder name, with a report position.
	type want struct {
		encoder string
		decoder string
		pos     ast.Node
	}
	var wants []want
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !ast.IsExported(fd.Name.Name) {
				continue
			}
			switch {
			case fd.Recv == nil && strings.HasPrefix(fd.Name.Name, "Encode"):
				wants = append(wants, want{fd.Name.Name, "Decode" + strings.TrimPrefix(fd.Name.Name, "Encode"), fd.Name})
			case fd.Recv != nil && fd.Name.Name == "Encode":
				if tn := recvTypeName(pass, fd); tn != "" && ast.IsExported(tn) {
					wants = append(wants, want{tn + ".Encode", "Decode" + tn, fd.Name})
				}
			}
		}
	}
	if len(wants) == 0 {
		return
	}
	sort.Slice(wants, func(i, j int) bool { return wants[i].encoder < wants[j].encoder })
	tests := testFileText(pass)
	for _, w := range wants {
		if pass.Pkg.Scope().Lookup(w.decoder) == nil {
			pass.Reportf(w.pos.Pos(),
				"%s has no matching %s in package %s; an encoder without a decoder is a write-only wire format", w.encoder, w.decoder, pass.Pkg.Name())
			continue
		}
		if !strings.Contains(tests, w.decoder) {
			pass.Reportf(w.pos.Pos(),
				"%s has no round-trip test: no *_test.go in the package mentions %s", w.encoder, w.decoder)
		}
	}
}

// testFileText concatenates every *_test.go in the package directory, read
// from disk: the vet unit for the plain package does not carry test files,
// and the check must not depend on which unit variant it runs in.
func testFileText(pass *check.Pass) string {
	if len(pass.Files) == 0 {
		return ""
	}
	dir := filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return ""
	}
	var sb strings.Builder
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err == nil {
			sb.Write(b)
		}
	}
	return sb.String()
}

func recvTypeName(pass *check.Pass, fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return ""
	}
	t := pass.Info.TypeOf(fd.Recv.List[0].Type)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// --- invariant 3: mutex contracts -------------------------------------

var guardedByRE = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// contractWords in a mutex's own comment count as a stated contract for
// mutexes that serialize actions rather than guard fields (Peer.wmu,
// Server.applyMu).
var contractWords = regexp.MustCompile(`\b(serializes|guards|guarded)\b`)

func checkMutexContracts(pass *check.Pass) {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			// Which mutex fields exist, and which are named by a sibling's
			// guarded-by comment or carry their own contract comment.
			type mutexField struct {
				name string
				fld  *ast.Field
			}
			var mutexes []mutexField
			named := map[string]bool{}
			for _, fld := range st.Fields.List {
				if isMutexType(pass.Info.TypeOf(fld.Type)) {
					for _, name := range fld.Names {
						mutexes = append(mutexes, mutexField{name.Name, fld})
					}
					if len(fld.Names) == 0 { // embedded sync.Mutex
						mutexes = append(mutexes, mutexField{"Mutex", fld})
					}
				}
				for _, m := range guardedByRE.FindAllStringSubmatch(fieldComments(fld), -1) {
					named[m[1]] = true
				}
			}
			for _, m := range mutexes {
				if named[m.name] || contractWords.MatchString(fieldComments(m.fld)) {
					continue
				}
				pass.Reportf(m.fld.Pos(),
					"mutex %s.%s has no contract: no sibling field says `// guarded by %s` and the mutex's own comment does not say what it serializes or guards",
					ts.Name.Name, m.name, m.name)
			}
			return true
		})
	}
}

func fieldComments(fld *ast.Field) string {
	var sb strings.Builder
	if fld.Doc != nil {
		sb.WriteString(fld.Doc.Text())
		sb.WriteString("\n")
	}
	if fld.Comment != nil {
		sb.WriteString(fld.Comment.Text())
	}
	return sb.String()
}

func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// --- invariant 4: canonical metric and flight-event names -------------

// nameMethods maps the observability entry points whose first argument
// names a metric instrument or a flight-event kind.
var nameMethods = map[string]map[string]bool{
	"Registry": {"Counter": true, "Gauge": true, "Histogram": true, "FindHistogram": true, "Striped": true},
	"Recorder": {"Log": true},
}

func checkCanonicalNames(pass *check.Pass) {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/trace") {
		return // the canonical tables themselves live here
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue // tests mint ad-hoc names freely
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv := traceReceiver(pass, sel)
			if recv == "" || !nameMethods[recv][sel.Sel.Name] {
				return true
			}
			if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
				pass.Reportf(lit.Pos(),
					"%s.%s name %s is a raw string literal at the call site; spell it via the canonical tables in internal/trace (names.go), so dashboards, the SLO layer and the conformance tests agree on one name",
					recv, sel.Sel.Name, lit.Value)
			}
			return true
		})
	}
}

// traceReceiver returns the receiver type name ("Registry", "Recorder")
// when sel selects a method on an internal/trace type, else "".
func traceReceiver(pass *check.Pass, sel *ast.SelectorExpr) string {
	t := pass.Info.TypeOf(sel.X)
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/trace") {
		return ""
	}
	return obj.Name()
}
