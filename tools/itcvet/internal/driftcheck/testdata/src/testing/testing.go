// Package testing is a fixture stub: just the fuzzing surface the
// driftcheck fixtures use.
package testing

type T struct{}

type F struct{}

func (f *F) Add(args ...any)
func (f *F) Fuzz(fn any)
