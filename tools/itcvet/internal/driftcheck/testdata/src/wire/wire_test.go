package wire

// Round-trip witnesses: the checker looks for decoder names in test text.
func roundTripGood() {
	b := EncodeGood(7)
	_, _ = DecodeGood(b)
}

func roundTripHeader() {
	h := Header{Len: 9}
	_, _ = DecodeHeader(h.Encode())
}
