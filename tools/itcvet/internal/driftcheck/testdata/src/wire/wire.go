// Package wire exercises driftcheck's Encode/Decode pairing: the package
// name makes it a codec package.
package wire

// Good has both directions and a round-trip test.
func EncodeGood(v uint32) []byte { return nil }

func DecodeGood(b []byte) (uint32, error) { return 0, nil }

// Header pairs a method encoder with a DecodeHeader function.
type Header struct{ Len uint32 }

func (h Header) Encode() []byte { return nil }

func DecodeHeader(b []byte) (Header, error) { return Header{}, nil }

func EncodeOrphan(v uint64) []byte { return nil } // want `EncodeOrphan has no matching DecodeOrphan`

func EncodeUntested(v uint16) []byte { return nil } // want `EncodeUntested has no round-trip test`

func DecodeUntested(b []byte) (uint16, error) { return 0, nil }

// ChecksumEncode does not begin with Encode: prefix rule leaves it alone.
func ChecksumEncode(b []byte) uint32 { return 0 }
