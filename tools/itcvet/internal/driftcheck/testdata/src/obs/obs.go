// Package obs exercises driftcheck's canonical-name invariant: metric and
// flight-event names used outside internal/trace must come from its tables,
// not be minted as literals at the call site.
package obs

import "itcfs/internal/trace"

func instrument(reg *trace.Registry, rec *trace.Recorder, link string, vol uint32) {
	// Canonical constants and composed names pass.
	reg.Counter(trace.MetricVenusCacheHits).Inc()
	reg.Striped(trace.MetricRPCRetries).Inc(7)
	reg.Counter(trace.VolOpsMetric(vol)).Inc()
	reg.Gauge("net." + link + ".queue").Add(1)
	rec.Log(trace.EventRPCRetry, "ws0", "call 12 attempt 2")

	// Literals minted at the call site have drifted from the tables.
	reg.Counter("venus.cache.hits").Inc()         // want `Registry\.Counter name "venus\.cache\.hits" is a raw string literal`
	reg.Histogram("mystery.latency")              // want `Registry\.Histogram name "mystery\.latency" is a raw string literal`
	reg.FindHistogram("mystery.latency")          // want `Registry\.FindHistogram name "mystery\.latency" is a raw string literal`
	reg.Striped("rogue.counter")                  // want `Registry\.Striped name "rogue\.counter" is a raw string literal`
	rec.Log("rogue.event", "ws0", "never tabled") // want `Recorder\.Log name "rogue\.event" is a raw string literal`

	// The standard escape hatch is honored, with an auditable reason.
	//itcvet:allow drift -- scratch gauge local to a one-off calibration run
	reg.Gauge("scratch.calibration").Add(1)
}
