module fixture/dr

go 1.22
