// Package dr exercises driftcheck's fuzz-in-ci and mutex-contract
// invariants; the fixture directory carries its own go.mod and ci.sh so the
// walk-up never reaches the real repository's gate.
package dr

import "sync"

// Contracted: a sibling field names the mutex.
type Table struct {
	mu   sync.Mutex
	rows map[int]string // guarded by mu
}

// SelfStated: the mutex's own comment says what it serializes.
type Writer struct {
	wmu sync.Mutex // serializes frame writes
	n   int
}

// Bare has drifted: nothing states what mu protects.
type Bare struct {
	mu sync.Mutex // want `mutex Bare\.mu has no contract`
	n  int
}

// ReadMostly uses an RWMutex; the contract rule is the same.
type ReadMostly struct {
	mu sync.RWMutex // want `mutex ReadMostly\.mu has no contract`
	m  map[string]int
}

// Allowed opts out explicitly, with a reason the reader can audit.
type Allowed struct {
	//itcvet:allow drift -- scratch mutex for a benchmark harness, no shared fields
	mu sync.Mutex
	n  int
}
