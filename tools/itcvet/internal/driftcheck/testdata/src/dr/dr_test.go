package dr

import "testing"

func FuzzTableRows(f *testing.F) {
	f.Fuzz(func(t *testing.T, k int, v string) {})
}

func FuzzForgotten(f *testing.F) { // want `fuzz target FuzzForgotten is not exercised by ci\.sh`
	f.Fuzz(func(t *testing.T, b []byte) {})
}
