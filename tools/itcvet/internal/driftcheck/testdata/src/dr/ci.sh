#!/bin/sh
go test -run=NONE -fuzz='^FuzzTableRows$' -fuzztime=10s .
