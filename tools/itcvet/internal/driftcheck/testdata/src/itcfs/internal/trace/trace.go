// Package trace is a fixture stub of the real itcfs/internal/trace: just
// enough surface for driftcheck's canonical-name invariant to resolve
// receiver types and constants.
package trace

const (
	MetricVenusCacheHits = "venus.cache.hits"
	MetricRPCRetries     = "rpc.retries"
	EventRPCRetry        = "rpc.retry"
)

// VolOpsMetric composes a per-volume counter name; composed names are
// canonical by construction.
func VolOpsMetric(vol uint32) string { return "vice.vol.x.ops" }

type Registry struct{}

func (r *Registry) Counter(name string) *Counter         { return nil }
func (r *Registry) Gauge(name string) *Gauge             { return nil }
func (r *Registry) Histogram(name string) *Histogram     { return nil }
func (r *Registry) FindHistogram(name string) *Histogram { return nil }
func (r *Registry) Striped(name string) *StripedCounter  { return nil }

type Counter struct{}

func (c *Counter) Inc() {}

type Gauge struct{}

func (g *Gauge) Add(d int64) {}

type Histogram struct{}

func (h *Histogram) Observe(d int64) {}

type StripedCounter struct{}

func (s *StripedCounter) Inc(key uint64) {}

type Recorder struct{}

func (r *Recorder) Log(kind, node, detail string) {}
