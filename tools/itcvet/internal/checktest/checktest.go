// Package checktest runs an analyzer over fixture packages, in the style
// of golang.org/x/tools/go/analysis/analysistest (which cannot be used
// here: the tree must build with no module downloads). Fixtures live under
// testdata/src/<pkg>/, import only other fixture packages — including
// hand-written stubs of the standard-library packages the analyzers care
// about (time, math/rand, sync, sort, fmt) — and declare expected findings
// with trailing comments:
//
//	_ = time.Now() // want `time\.Now reads the wall clock`
//
// Each backquoted or double-quoted string is a regexp that must match a
// diagnostic reported on that line; every diagnostic must be claimed by
// some expectation. //itcvet:allow annotations are honored exactly as in
// production, so fixtures exercise the escape hatch too.
package checktest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"itcfs/tools/itcvet/internal/check"
)

// wantRE captures each quoted expectation after a "want" marker.
var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// Run analyzes fixture package pkg under testdata and compares diagnostics
// against // want expectations.
func Run(t *testing.T, a *check.Analyzer, testdata, pkg string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &loader{fset: fset, testdata: testdata, pkgs: map[string]*types.Package{}}
	files, pkgType, info, err := ld.load(pkg)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkg, err)
	}

	diags := check.Run(fset, files, pkgType, info, []*check.Analyzer{a})

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				_, rest, found := strings.Cut(c.Text, "want ")
				if !found {
					continue
				}
				posn := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(rest, -1) {
					expr := m[1]
					if expr == "" {
						expr = m[2]
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", posn, expr, err)
					}
					k := key{posn.Filename, posn.Line}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic at %s: %s", d.Pos, d.Message)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		}
	}
}

// loader type-checks fixture packages, resolving imports to sibling
// fixture directories.
type loader struct {
	fset     *token.FileSet
	testdata string
	pkgs     map[string]*types.Package
}

func (l *loader) load(path string) ([]*ast.File, *types.Package, *types.Info, error) {
	dir := filepath.Join(l.testdata, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil, nil, fmt.Errorf("no fixture files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tc := &types.Config{Importer: l}
	pkg, err := tc.Check(path, l.fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	return files, pkg, info, nil
}

// Import resolves an import inside a fixture to another fixture package.
func (l *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	_, pkg, _, err := l.load(path)
	if err != nil {
		return nil, fmt.Errorf("fixture import %q (add a stub under testdata/src/%s): %w", path, path, err)
	}
	l.pkgs[path] = pkg
	return pkg, nil
}
