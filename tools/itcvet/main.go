// Command itcvet is this tree's custom static-analysis gate, run as
//
//	go build -o itcvet ./tools/itcvet
//	go vet -vettool=$(pwd)/itcvet ./...
//
// It bundles seven project-specific analyzers — simtime, seedrand,
// lockcheck, mapiter, lockorder, durcheck, driftcheck (see their package
// docs) — that machine-check the invariants every experiment rests on:
// virtual-time runs are bit-for-bit deterministic, annotated shared state
// is touched only under its lock, lock acquisition order is globally
// consistent and never blocks while held, durability errors are never
// dropped, and the fuzz/codec/mutex coverage the harness promises cannot
// silently drift.
//
// Besides the vettool protocol, "itcvet -lockgraph [packages]" prints the
// whole-module lock-acquisition graph (lockorder's view) in a
// deterministic text form and exits 1 on any cycle; DESIGN.md §7 embeds
// that output.
//
// The program speaks the protocol the go command expects of a -vettool
// directly, with no dependency outside the standard library (the usual
// golang.org/x/tools unitchecker cannot be vendored here; builds must work
// with an empty module cache and no network):
//
//   - "-V=full" prints a version line ending in buildID=<hash of the
//     executable>, which the go command folds into its action cache key;
//   - "-flags" prints a JSON description of the analyzer flags, which the
//     go command uses to validate pass-through arguments;
//   - otherwise the single argument is a vet.cfg file describing one
//     package: its Go files, import map, and export-data files for every
//     dependency. The package is type-checked against that export data,
//     the analyzers run, findings print to stderr as file:line:col
//     messages, and the exit status is 2 when there are findings.
//
// itcvet defines no cross-package facts, so dependency passes (VetxOnly)
// only write the empty facts file the protocol requires and exit.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"sort"
	"strings"

	"itcfs/tools/itcvet/internal/check"
	"itcfs/tools/itcvet/internal/driftcheck"
	"itcfs/tools/itcvet/internal/durcheck"
	"itcfs/tools/itcvet/internal/lockcheck"
	"itcfs/tools/itcvet/internal/lockorder"
	"itcfs/tools/itcvet/internal/mapiter"
	"itcfs/tools/itcvet/internal/seedrand"
	"itcfs/tools/itcvet/internal/simtime"
)

var analyzers = []*check.Analyzer{
	simtime.Analyzer,
	seedrand.Analyzer,
	lockcheck.Analyzer,
	mapiter.Analyzer,
	lockorder.Analyzer,
	durcheck.Analyzer,
	driftcheck.Analyzer,
}

// vetConfig mirrors the JSON the go command writes to vet.cfg (see
// cmd/go/internal/work's vetConfig); fields itcvet does not consume are
// listed for documentation and ignored.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	ImportMap    map[string]string
	PackageFile  map[string]string
	Standard     map[string]bool
	PackageVetx  map[string]string
	VetxOnly     bool
	VetxOutput   string

	SucceedOnTypecheckFailure bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("itcvet: ")

	vFlag := flag.String("V", "", "print version and exit (the go command passes -V=full)")
	flagsFlag := flag.Bool("flags", false, "print a JSON description of the analyzer flags and exit")
	lockgraphFlag := flag.Bool("lockgraph", false, "print the lock-acquisition graph for the named packages (default ./...) and exit 1 on any cycle")
	enabled := map[string]*bool{}
	for _, a := range analyzers {
		enabled[a.Name] = flag.Bool(a.Name, true, a.Doc)
	}
	flag.Parse()

	switch {
	case *vFlag != "":
		printVersion()
	case *flagsFlag:
		printFlags()
	case *lockgraphFlag:
		os.Exit(lockgraphMain(flag.Args()))
	default:
		args := flag.Args()
		if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
			log.Fatalf(`invoke via the go command: go vet -vettool=/path/to/itcvet ./...`)
		}
		var active []*check.Analyzer
		for _, a := range analyzers {
			if *enabled[a.Name] {
				active = append(active, a)
			}
		}
		os.Exit(unit(args[0], active))
	}
}

// printVersion implements the -V=full handshake: the executable's content
// hash stands in for a version so the go command re-vets when the tool
// changes.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
}

// printFlags implements the -flags probe.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	for _, a := range analyzers {
		out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	data, err := json.Marshal(out)
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// unit analyzes the single package described by cfgFile and returns the
// process exit status.
func unit(cfgFile string, active []*check.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("parsing %s: %v", cfgFile, err)
	}

	// Facts are the only reason the go command runs a vet tool over
	// dependencies; itcvet has none, so dependency passes are a no-op
	// beyond the facts file the protocol requires.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				log.Fatal(err)
			}
		}
	}
	if cfg.VetxOnly || len(cfg.GoFiles) == 0 {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	pkg, info, err := typeCheck(fset, files, cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		log.Fatalf("type-checking %s: %v", cfg.ImportPath, err)
	}

	diags := check.Run(fset, files, pkg, info, active)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Offset != b.Pos.Offset {
			return a.Pos.Offset < b.Pos.Offset
		}
		return a.Message < b.Message
	})
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	writeVetx()
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// typeCheck checks the package against the export data the go command
// listed in the config.
func typeCheck(fset *token.FileSet, files []*ast.File, cfg *vetConfig) (*types.Package, *types.Info, error) {
	if cfg.Compiler != "gc" && cfg.Compiler != "" {
		return nil, nil, fmt.Errorf("unsupported compiler %q: itcvet reads gc export data only", cfg.Compiler)
	}
	gc, ok := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data recorded for %q", path)
		}
		return os.Open(file)
	}).(types.ImporterFrom)
	if !ok {
		return nil, nil, fmt.Errorf("gc importer does not support ImportFrom")
	}

	var firstErr error
	tc := &types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			if mapped, ok := cfg.ImportMap[path]; ok {
				path = mapped
			}
			return gc.ImportFrom(path, cfg.Dir, 0)
		}),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err == nil {
		err = firstErr
	}
	return pkg, info, err
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
