// The -lockgraph mode: load packages outside the vet protocol (via go list
// export data), run lockorder's graph extraction over each, and print one
// merged, deterministic, diffable text graph. DESIGN.md §7 embeds the
// output; ci.sh regenerates it and fails on any diff, which makes the
// checked-in graph both documentation and a regression gate.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"itcfs/tools/itcvet/internal/lockorder"
)

// listPkg is the slice of go list -json output lockgraph consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Module     *struct {
		Path      string
		Dir       string
		GoVersion string
	}
}

// qualified is a lock node or edge endpoint with its package attached.
type qualified struct {
	pkg string // import path relative to the module
	key lockorder.Key
}

func (q qualified) String() string { return q.pkg + "." + q.key.String() }

func lockgraphMain(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(patterns)
	if err != nil {
		log.Fatal(err)
	}

	exports := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	var targets []*listPkg
	for _, p := range pkgs {
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	type edge struct {
		from, to qualified
		pos      string // module-relative file:line
		via      string
	}
	var nodes []qualified
	var edges []edge
	cyclic := false

	var out bytes.Buffer
	for _, p := range targets {
		fset := token.NewFileSet()
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				log.Fatal(err)
			}
			files = append(files, f)
		}
		cfg := &vetConfig{
			Compiler:    "gc",
			Dir:         p.Dir,
			ImportPath:  p.ImportPath,
			PackageFile: exports,
		}
		if p.Module != nil {
			cfg.GoVersion = p.Module.GoVersion
		}
		pkg, info, err := typeCheck(fset, files, cfg)
		if err != nil {
			log.Fatalf("type-checking %s: %v", p.ImportPath, err)
		}
		g := lockorder.BuildGraph(fset, files, pkg, info)

		rel := p.ImportPath
		modDir := ""
		if p.Module != nil {
			rel = strings.TrimPrefix(rel, p.Module.Path+"/")
			modDir = p.Module.Dir
		}
		for _, n := range g.Nodes {
			nodes = append(nodes, qualified{rel, n})
		}
		for _, e := range g.Edges {
			edges = append(edges, edge{
				from: qualified{rel, e.From},
				to:   qualified{rel, e.To},
				pos:  relPos(modDir, e.Pos),
				via:  e.Via,
			})
		}
		for _, cyc := range lockorder.Cycles(g) {
			cyclic = true
			var parts []string
			parts = append(parts, rel+"."+cyc.Edges[0].From.String())
			for _, e := range cyc.Edges {
				parts = append(parts, fmt.Sprintf("%s.%s (%s)", rel, e.To, relPos(modDir, e.Pos)))
			}
			fmt.Fprintf(&out, "cycle %s\n", strings.Join(parts, " -> "))
		}
	}

	sort.Slice(nodes, func(i, j int) bool { return nodes[i].String() < nodes[j].String() })
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from.String() != edges[j].from.String() {
			return edges[i].from.String() < edges[j].from.String()
		}
		return edges[i].to.String() < edges[j].to.String()
	})

	fmt.Printf("# itcvet lock-order graph: %d locks, %d edges\n", len(nodes), len(edges))
	fmt.Printf("# edge A -> B: some path acquires B while holding A; cycles are potential deadlocks\n")
	for _, n := range nodes {
		fmt.Printf("lock %s\n", n)
	}
	for _, e := range edges {
		fmt.Printf("edge %s -> %s  at %s (%s)\n", e.from, e.to, e.pos, e.via)
	}
	if cyclic {
		os.Stdout.Write(out.Bytes())
		fmt.Fprintln(os.Stderr, "itcvet -lockgraph: lock-order cycle detected")
		return 1
	}
	return 0
}

// relPos renders a witness position relative to the module root so the
// output is stable across checkouts.
func relPos(modDir string, p token.Position) string {
	name := p.Filename
	if modDir != "" {
		if r, err := filepath.Rel(modDir, name); err == nil {
			name = filepath.ToSlash(r)
		}
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}

// goList loads the named patterns and their full dependency closure with
// export data built.
func goList(patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-deps", "-export", "-json=Dir,ImportPath,Name,Export,GoFiles,Standard,DepOnly,Module"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(outPipe)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list %s: %v", strings.Join(patterns, " "), err)
	}
	return pkgs, nil
}
