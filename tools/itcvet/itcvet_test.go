package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestVettoolEndToEnd is the acceptance test for the CI gate: it builds the
// real itcvet binary, then drives the real `go vet -vettool=` machinery over
// throwaway modules. A module seeded with one violation of each class must
// fail the vet run with the right diagnostic; a module using the sanctioned
// idioms (annotated wall-clock, seeded rand, locked access, sorted
// iteration) must pass clean.
func TestVettoolEndToEnd(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("exercises the unix vet pipeline")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}

	bin := filepath.Join(t.TempDir(), "itcvet")
	build := exec.Command(goTool, "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building itcvet: %v\n%s", err, out)
	}

	vet := func(t *testing.T, files map[string]string) (string, error) {
		t.Helper()
		dir := t.TempDir()
		files["go.mod"] = "module fixture\n\ngo 1.22\n"
		for name, src := range files {
			path := filepath.Join(dir, name)
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		cmd := exec.Command(goTool, "vet", "-vettool="+bin, "./...")
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	// Each seeded violation must fail CI with its analyzer's diagnostic.
	violations := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "simtime",
			src: `package p

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
			want: "[simtime]",
		},
		{
			name: "seedrand",
			src: `package p

import "math/rand"

func Jitter() int { return rand.Intn(100) }
`,
			want: "[seedrand]",
		},
		{
			name: "lockcheck",
			src: `package p

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *Counter) Bump() { c.n++ }
`,
			want: "[lockcheck]",
		},
		{
			name: "mapiter",
			src: `package p

import "strings"

func Dump(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k)
	}
	return b.String()
}
`,
			want: "[mapiter]",
		},
		{
			name: "lockorder_cycle",
			src: `package p

import "sync"

type A struct {
	mu sync.Mutex
	n  int // guarded by mu
}

type B struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func One(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	a.mu.Unlock()
}

func Two(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
	b.mu.Unlock()
}
`,
			want: "[lockorder]",
		},
		{
			name: "lockorder_blocking",
			src: `package p

import "sync"

type Q struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func Wait(q *Q, ch chan int) {
	q.mu.Lock()
	q.n = <-ch
	q.mu.Unlock()
}
`,
			want: "[lockorder]",
		},
		{
			name: "durcheck",
			src: `package p

type Store struct{}

func (s *Store) Sync() error { return nil }

func Flush(s *Store) {
	_ = s.Sync()
}
`,
			want: "[durcheck]",
		},
		{
			name: "driftcheck_contract",
			src: `package p

import "sync"

type Bare struct {
	mu sync.Mutex
	n  int
}

func Bump(b *Bare) {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}
`,
			want: "[driftcheck]",
		},
	}
	for _, v := range violations {
		t.Run("flags_"+v.name, func(t *testing.T) {
			out, err := vet(t, map[string]string{"p.go": v.src})
			if err == nil {
				t.Fatalf("go vet passed on a %s violation; output:\n%s", v.name, out)
			}
			if !strings.Contains(out, v.want) {
				t.Fatalf("diagnostic missing %q:\n%s", v.want, out)
			}
		})
	}

	t.Run("flags_driftcheck_fuzz", func(t *testing.T) {
		out, err := vet(t, map[string]string{
			"ci.sh": "#!/bin/sh\ngo test ./...\n",
			"p.go":  "package p\n",
			"p_test.go": `package p

import "testing"

func FuzzParse(f *testing.F) {
	f.Fuzz(func(t *testing.T, b []byte) {})
}
`,
		})
		if err == nil {
			t.Fatalf("go vet passed with a fuzz target missing from ci.sh; output:\n%s", out)
		}
		if !strings.Contains(out, "FuzzParse is not exercised by ci.sh") {
			t.Fatalf("diagnostic missing fuzz drift:\n%s", out)
		}
	})

	t.Run("flags_driftcheck_codec", func(t *testing.T) {
		out, err := vet(t, map[string]string{
			"wire/wire.go": `package wire

func EncodeLen(v uint32) []byte { return []byte{byte(v)} }
`,
		})
		if err == nil {
			t.Fatalf("go vet passed with an Encode lacking a Decode; output:\n%s", out)
		}
		if !strings.Contains(out, "EncodeLen has no matching DecodeLen") {
			t.Fatalf("diagnostic missing codec drift:\n%s", out)
		}
	})

	t.Run("clean_module_passes", func(t *testing.T) {
		out, err := vet(t, map[string]string{"p.go": `package p

import (
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// Startup records when the process began; the daemon boundary is genuinely
// wall-clock and says so.
var Startup = time.Now() //itcvet:allow wallclock -- process start is wall time by definition

// Pick draws from an explicitly seeded stream.
func Pick(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

type Counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *Counter) Bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Dump emits keys in sorted order, so map iteration never reaches the sink.
func Dump(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
	}
	return b.String()
}
`})
		if err != nil {
			t.Fatalf("go vet failed on a clean module: %v\n%s", err, out)
		}
	})

	// The sanctioned idioms for the v2 analyzers: consistent lock order, an
	// annotated intended block, propagated durability errors, contracted
	// mutexes, a fuzz target in ci.sh, and a codec with a round-trip test.
	t.Run("clean_v2_module_passes", func(t *testing.T) {
		out, err := vet(t, map[string]string{
			"ci.sh": "#!/bin/sh\ngo test -run=NONE -fuzz='^FuzzParse$' -fuzztime=10s .\n",
			"p.go": `package p

import "sync"

type Store struct{}

func (s *Store) Sync() error { return nil }

type Q struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Flush bumps the counter, hands it to the (capacity-1) status channel,
// and propagates the store's durability error.
func Flush(s *Store, q *Q, ch chan int) error {
	q.mu.Lock()
	q.n++
	//itcvet:allowblocking capacity-1 status channel with a dedicated drainer
	ch <- q.n
	q.mu.Unlock()
	return s.Sync()
}
`,
			"p_test.go": `package p

import "testing"

func FuzzParse(f *testing.F) {
	f.Fuzz(func(t *testing.T, b []byte) {})
}
`,
			"wire/wire.go": `package wire

func EncodeLen(v uint32) []byte { return []byte{byte(v)} }

func DecodeLen(b []byte) uint32 { return uint32(b[0]) }
`,
			"wire/wire_test.go": `package wire

import "testing"

func TestLenRoundTrip(t *testing.T) {
	if DecodeLen(EncodeLen(7)) != 7 {
		t.Fatal("round trip broken")
	}
}
`,
		})
		if err != nil {
			t.Fatalf("go vet failed on a clean v2 module: %v\n%s", err, out)
		}
	})
}

// TestDeterminism pins the self-check satellite: the same tree analyzed
// twice produces byte-identical diagnostics, and -lockgraph over the real
// repository produces byte-identical graphs. Two separate module copies
// defeat the go command's vet result cache; diagnostics print paths
// relative to the working directory, so the outputs must match exactly.
func TestDeterminism(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("exercises the unix vet pipeline")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}
	bin := filepath.Join(t.TempDir(), "itcvet")
	build := exec.Command(goTool, "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building itcvet: %v\n%s", err, out)
	}

	src := `package p

import (
	"sync"
	"time"
)

type Bare struct {
	mu sync.Mutex
	n  int
}

type Store struct{}

func (s *Store) Sync() error { return nil }

func Flush(s *Store, b *Bare, ch chan int) {
	_ = s.Sync()
	b.mu.Lock()
	ch <- b.n
	b.mu.Unlock()
}

func Stamp() int64 { return time.Now().UnixNano() }
`
	runVet := func(t *testing.T) string {
		t.Helper()
		dir := t.TempDir()
		for name, content := range map[string]string{
			"go.mod": "module fixture\n\ngo 1.22\n",
			"p.go":   src,
		} {
			if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		cmd := exec.Command(goTool, "vet", "-vettool="+bin, "./...")
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("expected findings, got clean run:\n%s", out)
		}
		return string(out)
	}
	first, second := runVet(t), runVet(t)
	if first != second {
		t.Fatalf("diagnostics differ between identical runs:\n--- first\n%s\n--- second\n%s", first, second)
	}

	lockgraph := func() string {
		cmd := exec.Command(bin, "-lockgraph", "./...")
		cmd.Dir = filepath.Join("..", "..") // repository root
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("itcvet -lockgraph: %v\n%s", err, out)
		}
		return string(out)
	}
	g1, g2 := lockgraph(), lockgraph()
	if g1 != g2 {
		t.Fatalf("-lockgraph output differs between identical runs:\n--- first\n%s\n--- second\n%s", g1, g2)
	}
}
