package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestVettoolEndToEnd is the acceptance test for the CI gate: it builds the
// real itcvet binary, then drives the real `go vet -vettool=` machinery over
// throwaway modules. A module seeded with one violation of each class must
// fail the vet run with the right diagnostic; a module using the sanctioned
// idioms (annotated wall-clock, seeded rand, locked access, sorted
// iteration) must pass clean.
func TestVettoolEndToEnd(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("exercises the unix vet pipeline")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}

	bin := filepath.Join(t.TempDir(), "itcvet")
	build := exec.Command(goTool, "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building itcvet: %v\n%s", err, out)
	}

	vet := func(t *testing.T, files map[string]string) (string, error) {
		t.Helper()
		dir := t.TempDir()
		files["go.mod"] = "module fixture\n\ngo 1.22\n"
		for name, src := range files {
			path := filepath.Join(dir, name)
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		cmd := exec.Command(goTool, "vet", "-vettool="+bin, "./...")
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	// Each seeded violation must fail CI with its analyzer's diagnostic.
	violations := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "simtime",
			src: `package p

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
			want: "[simtime]",
		},
		{
			name: "seedrand",
			src: `package p

import "math/rand"

func Jitter() int { return rand.Intn(100) }
`,
			want: "[seedrand]",
		},
		{
			name: "lockcheck",
			src: `package p

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *Counter) Bump() { c.n++ }
`,
			want: "[lockcheck]",
		},
		{
			name: "mapiter",
			src: `package p

import "strings"

func Dump(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k)
	}
	return b.String()
}
`,
			want: "[mapiter]",
		},
	}
	for _, v := range violations {
		t.Run("flags_"+v.name, func(t *testing.T) {
			out, err := vet(t, map[string]string{"p.go": v.src})
			if err == nil {
				t.Fatalf("go vet passed on a %s violation; output:\n%s", v.name, out)
			}
			if !strings.Contains(out, v.want) {
				t.Fatalf("diagnostic missing %q:\n%s", v.want, out)
			}
		})
	}

	t.Run("clean_module_passes", func(t *testing.T) {
		out, err := vet(t, map[string]string{"p.go": `package p

import (
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// Startup records when the process began; the daemon boundary is genuinely
// wall-clock and says so.
var Startup = time.Now() //itcvet:allow wallclock -- process start is wall time by definition

// Pick draws from an explicitly seeded stream.
func Pick(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

type Counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *Counter) Bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Dump emits keys in sorted order, so map iteration never reaches the sink.
func Dump(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
	}
	return b.String()
}
`})
		if err != nil {
			t.Fatalf("go vet failed on a clean module: %v\n%s", err, out)
		}
	})
}
