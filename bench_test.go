// Benchmarks regenerating the paper's evaluation (§5.2), one per
// experiment. Each iteration runs the full experiment on the simulated
// cell; the reported custom metrics carry the paper-comparable numbers
// (shares, ratios, utilizations), while ns/op measures the cost of the
// reproduction itself.
//
//	go test -bench=. -benchmem
//
// cmd/itcbench prints the same experiments as tables, at larger scale.
package itcfs_test

import (
	"testing"
	"time"

	"itcfs"
	"itcfs/internal/harness"
)

func benchLoad(mode itcfs.Mode) harness.LoadConfig {
	l := harness.DefaultLoad(mode)
	l.UsersPer = 8
	l.Drive.UserFiles = 80
	l.Drive.SysFiles = 30
	return l
}

// BenchmarkE1CallMix regenerates the server call histogram (validate 65%,
// status 27%, fetch 4%, store 2%).
func BenchmarkE1CallMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.E1CallMix(harness.E1Config{
			Load: benchLoad(itcfs.Prototype), Warm: 10 * time.Minute, Measure: 30 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Metrics["validate"], "%validate")
		b.ReportMetric(100*r.Metrics["status"], "%status")
		b.ReportMetric(100*r.Metrics["fetch"], "%fetch")
		b.ReportMetric(100*r.Metrics["store"], "%store")
	}
}

// BenchmarkE2Utilization regenerates server CPU/disk utilization (CPU ≈40%
// busiest, disk ≈14%, CPU the bottleneck).
func BenchmarkE2Utilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := harness.DefaultE2()
		cfg.Load = benchLoad(itcfs.Prototype)
		cfg.Load.Clusters = 2
		cfg.Warm = 10 * time.Minute
		cfg.Measure = 30 * time.Minute
		r, err := harness.E2Utilization(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Metrics["cpu_busiest"], "%cpu")
		b.ReportMetric(100*r.Metrics["disk_busiest"], "%disk")
		b.ReportMetric(100*r.Metrics["cpu_peak"], "%cpu-peak")
	}
}

// BenchmarkE3HitRatio regenerates the cache hit ratio (>80%).
func BenchmarkE3HitRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.E3HitRatio(harness.E3Config{
			Load: benchLoad(itcfs.Prototype), Warm: 15 * time.Minute, Measure: 30 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Metrics["hit_ratio"], "%hit")
	}
}

// BenchmarkE4AndrewLocalVsRemote regenerates the five-phase benchmark
// (≈1000 s local, ≈80% longer all-remote).
func BenchmarkE4AndrewLocalVsRemote(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.E4AndrewBenchmark(harness.DefaultE4())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Metrics["local_s"], "local-s")
		b.ReportMetric(r.Metrics["remote_s"], "remote-s")
		b.ReportMetric(100*r.Metrics["overhead"], "%overhead")
	}
}

// BenchmarkE5Scalability regenerates the benchmark-vs-load sweep (≈20
// WS/server acceptable; contention grows past it).
func BenchmarkE5Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := harness.DefaultE5()
		cfg.LoadWS = []int{0, 10, 20}
		cfg.Drive.UserFiles = 60
		cfg.Drive.SysFiles = 20
		r, err := harness.E5Scalability(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Metrics["ratio_10"], "x-at-10ws")
		b.ReportMetric(r.Metrics["ratio_20"], "x-at-20ws")
	}
}

// BenchmarkE6ValidationAblation regenerates the check-on-open vs callback
// comparison that motivated the revised design.
func BenchmarkE6ValidationAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.E6ValidationAblation(harness.E6Config{
			UsersPer: 8, Warm: 10 * time.Minute, Measure: 30 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Metrics["call_reduction"], "%call-cut")
		b.ReportMetric(100*r.Metrics["cpu_proto"], "%cpu-proto")
		b.ReportMetric(100*r.Metrics["cpu_revised"], "%cpu-revised")
	}
}

// BenchmarkE7PathnameAblation regenerates the server-side vs client-side
// pathname traversal comparison.
func BenchmarkE7PathnameAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.E7PathnameAblation(harness.DefaultE7())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Metrics["cpu_per_op_proto_ms"], "ms/op-proto")
		b.ReportMetric(r.Metrics["cpu_per_op_revised_ms"], "ms/op-revised")
		b.ReportMetric(100*r.Metrics["cpu_saving"], "%cpu-saved")
	}
}

// BenchmarkE8WholeFileVsPaged regenerates the transfer-granularity
// comparison (whole-file wins overhead and re-reads; paging wins partial
// reads of huge files).
func BenchmarkE8WholeFileVsPaged(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.E8WholeFileVsPaged(harness.DefaultE8())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Metrics["whole_seq_ms"], "whole-seq-ms")
		b.ReportMetric(r.Metrics["page_seq_ms"], "page-seq-ms")
		b.ReportMetric(r.Metrics["whole_reread_ms"], "whole-reread-ms")
		b.ReportMetric(r.Metrics["page_reread_ms"], "page-reread-ms")
	}
}

// BenchmarkE9ReadOnlyReplication regenerates the replication locality
// comparison.
func BenchmarkE9ReadOnlyReplication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.E9ReadOnlyReplication(harness.E9Config{Readers: 5, Binaries: 6, Reads: 12})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Metrics["backbone_single"], "bb-frames-single")
		b.ReportMetric(r.Metrics["backbone_replicated"], "bb-frames-repl")
	}
}

// BenchmarkE10Revocation regenerates the rapid-revocation comparison.
func BenchmarkE10Revocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.E10Revocation(harness.DefaultE10())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Metrics["neg_calls"], "calls-negrights")
		b.ReportMetric(r.Metrics["db_calls"], "calls-dbupdate")
	}
}

// BenchmarkE11Rebalance regenerates the monitoring-tools loop: detect
// misplaced volumes from server access patterns, apply the recommended
// moves, and measure the localized traffic (§3.6).
func BenchmarkE11Rebalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.E11Rebalance(harness.DefaultE11())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Metrics["frames_before"], "bb-frames-before")
		b.ReportMetric(r.Metrics["frames_after"], "bb-frames-after")
	}
}
