package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"itcfs/internal/proto"
	"itcfs/internal/rpc"
	"itcfs/internal/secure"
	"itcfs/internal/vice"
)

// TestItcfsdHelperProcess is not a test: re-exec'd by the restart test below
// it becomes the itcfsd daemon, so kill -9 hits a real process.
func TestItcfsdHelperProcess(t *testing.T) {
	if os.Getenv("ITCFSD_HELPER") != "1" {
		t.Skip("helper process entry point")
	}
	os.Exit(run(strings.Split(os.Getenv("ITCFSD_ARGS"), "\x1f")))
}

// daemon is one re-exec'd itcfsd under test.
type daemon struct {
	cmd   *exec.Cmd
	addr  string
	debug string
}

func startDaemon(t *testing.T, dataDir string) *daemon {
	t.Helper()
	ready := filepath.Join(t.TempDir(), "ready")
	args := []string{
		"-addr", "127.0.0.1:0",
		"-debug-addr", "127.0.0.1:0",
		"-operator-password", "pw",
		"-data-dir", dataDir,
		"-checkpoint-interval", "0",
		"-ready-file", ready,
	}
	cmd := exec.Command(os.Args[0], "-test.run=^TestItcfsdHelperProcess$")
	cmd.Env = append(os.Environ(), "ITCFSD_HELPER=1", "ITCFSD_ARGS="+strings.Join(args, "\x1f"))
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatalf("start daemon: %v", err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})

	deadline := time.Now().Add(15 * time.Second) //itcvet:allow wallclock -- test polls a real subprocess
	for {
		b, err := os.ReadFile(ready)
		if err == nil && strings.HasSuffix(string(b), "\n") {
			lines := strings.Split(strings.TrimSpace(string(b)), "\n")
			d := &daemon{cmd: cmd}
			for _, l := range lines {
				if rest, ok := strings.CutPrefix(l, "ADDR "); ok {
					d.addr = rest
				}
				if rest, ok := strings.CutPrefix(l, "DEBUG "); ok {
					d.debug = rest
				}
			}
			if d.addr == "" {
				t.Fatalf("ready file without ADDR: %q", b)
			}
			return d
		}
		if time.Now().After(deadline) { //itcvet:allow wallclock -- test polls a real subprocess
			t.Fatalf("daemon never became ready (read err %v)", err)
		}
		time.Sleep(20 * time.Millisecond) //itcvet:allow wallclock -- test polls a real subprocess
	}
}

func (d *daemon) dial(t *testing.T) *rpc.Peer {
	t.Helper()
	conn, err := net.Dial("tcp", d.addr)
	if err != nil {
		t.Fatalf("dial %s: %v", d.addr, err)
	}
	peer, err := rpc.DialPeer(conn, "operator", secure.DeriveKey("operator", "pw"), rpc.NewServer())
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	return peer
}

func call(t *testing.T, peer *rpc.Peer, op uint16, body, bulk []byte) rpc.Response {
	t.Helper()
	resp, err := peer.Call(nil, rpc.Request{Op: rpc.Op(op), Body: body, Bulk: bulk})
	if err != nil {
		t.Fatalf("op %d: %v", op, err)
	}
	return resp
}

func mustOK(t *testing.T, resp rpc.Response) rpc.Response {
	t.Helper()
	if !resp.OK() {
		t.Fatalf("call failed: code %d: %s", resp.Code, resp.Body)
	}
	return resp
}

func ref(p string) proto.Ref { return proto.Ref{Path: p} }

// TestItcfsdKillDashNineRestart is the end-to-end durability test: a real
// daemon process serving real TCP clients is killed with SIGKILL — no
// checkpoint, no flush — restarted over the same data directory, and must
// serve every acknowledged write back. An unacknowledged in-flight write may
// be absent or complete, never torn. The restart's salvage summary must be
// visible on the /events debug endpoint.
func TestItcfsdKillDashNineRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	dataDir := filepath.Join(t.TempDir(), "data")

	d1 := startDaemon(t, dataDir)
	peer := d1.dial(t)

	mustOK(t, call(t, peer, proto.OpMakeDir,
		proto.Marshal(proto.NameArgs{Dir: ref("/"), Name: "d", Mode: 0o755}), nil))
	contents := map[string][]byte{}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("f%d", i)
		body := []byte(strings.Repeat(fmt.Sprintf("<%d>", i), 100+i*37))
		mustOK(t, call(t, peer, proto.OpCreate,
			proto.Marshal(proto.NameArgs{Dir: ref("/d"), Name: name, Mode: 0o644}), nil))
		mustOK(t, call(t, peer, proto.OpStore,
			proto.Marshal(proto.StoreArgs{Ref: ref("/d/" + name)}), body))
		contents["/d/"+name] = body
	}

	// An in-flight write racing the kill: acknowledged-or-absent, never torn.
	inflight := []byte(strings.Repeat("INFLIGHT", 4096))
	go func() {
		c, err := net.Dial("tcp", d1.addr)
		if err != nil {
			return
		}
		p, err := rpc.DialPeer(c, "operator", secure.DeriveKey("operator", "pw"), rpc.NewServer())
		if err != nil {
			return
		}
		if r, err := p.Call(nil, rpc.Request{Op: rpc.Op(proto.OpCreate),
			Body: proto.Marshal(proto.NameArgs{Dir: ref("/d"), Name: "inflight", Mode: 0o644})}); err != nil || !r.OK() {
			return
		}
		_, _ = p.Call(nil, rpc.Request{Op: rpc.Op(proto.OpStore),
			Body: proto.Marshal(proto.StoreArgs{Ref: ref("/d/inflight")}), Bulk: inflight})
	}()

	// kill -9: no signal handler runs, no checkpoint is written.
	if err := d1.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	_, _ = d1.cmd.Process.Wait()

	d2 := startDaemon(t, dataDir)
	peer2 := d2.dial(t)
	for path, want := range contents {
		resp := mustOK(t, call(t, peer2, proto.OpFetch,
			proto.Marshal(proto.FetchArgs{Ref: ref(path)}), nil))
		if string(resp.Bulk) != string(want) {
			t.Fatalf("%s: %d bytes survived, want %d", path, len(resp.Bulk), len(want))
		}
	}
	resp := call(t, peer2, proto.OpFetch,
		proto.Marshal(proto.FetchArgs{Ref: ref("/d/inflight")}), nil)
	switch {
	case resp.Code == proto.CodeNoEnt:
		// lost with the crash: fine, it was never acknowledged
	case resp.OK():
		if len(resp.Bulk) != 0 && string(resp.Bulk) != string(inflight) {
			t.Fatalf("in-flight file is torn: %d of %d bytes", len(resp.Bulk), len(inflight))
		}
	default:
		t.Fatalf("in-flight fetch: code %d: %s", resp.Code, resp.Body)
	}

	// The restart's salvage report is operational evidence on /events.
	httpResp, err := http.Get("http://" + d2.debug + "/events")
	if err != nil {
		t.Fatalf("GET /events: %v", err)
	}
	events, err := io.ReadAll(httpResp.Body)
	httpResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(events), "vice.salvage") {
		t.Fatalf("no vice.salvage event after restart:\n%s", events)
	}
}

// TestWriteLocDB pins the /locdb rendering: version, sorted entries,
// custodians, and — the part a single-daemon end-to-end test cannot drive —
// replica sets.
func TestWriteLocDB(t *testing.T) {
	db := vice.NewLocDB()
	db.Install([]proto.LocEntry{
		{Prefix: "/", Volume: 1, Custodian: "server0"},
		{Prefix: "/unix/bin-ro", Volume: 4, Custodian: "server0", Replicas: []string{"server1", "server2"}},
		{Prefix: "/usr/amy", Volume: 3, Custodian: "server1"},
	}, nil)
	var b strings.Builder
	writeLocDB(&b, db)
	out := b.String()
	if !strings.Contains(out, fmt.Sprintf("location database: version %d, 3 entries", db.Version())) {
		t.Errorf("missing header with version and count:\n%s", out)
	}
	for _, want := range []string{
		"volume 1", "custodian server0",
		"/usr/amy", "custodian server1",
		"/unix/bin-ro", "replicas [server1 server2]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering lacks %q:\n%s", want, out)
		}
	}
	// Entries must come out sorted by prefix, not map order.
	if strings.Index(out, "/unix/bin-ro") > strings.Index(out, "/usr/amy") {
		t.Errorf("entries not sorted by prefix:\n%s", out)
	}
}

// TestItcfsdLocDBEndpoint drives the real daemon: create a volume and a
// read-only clone over TCP, then read the location database back from the
// /locdb debug endpoint and find both mounts with their custodian.
func TestItcfsdLocDBEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	d := startDaemon(t, filepath.Join(t.TempDir(), "data"))
	peer := d.dial(t)

	resp := mustOK(t, call(t, peer, proto.OpVolCreate,
		proto.Marshal(proto.VolCreateArgs{Name: "proj", Path: "/proj", Owner: "operator"}), nil))
	vs, err := proto.Unmarshal(resp.Body, proto.DecodeVolStatusReply)
	if err != nil {
		t.Fatal(err)
	}
	vid := vs.Volume
	mustOK(t, call(t, peer, proto.OpVolClone,
		proto.Marshal(proto.VolCloneArgs{Volume: vid, Path: "/proj-ro"}), nil))

	httpResp, err := http.Get("http://" + d.debug + "/locdb")
	if err != nil {
		t.Fatalf("GET /locdb: %v", err)
	}
	body, err := io.ReadAll(httpResp.Body)
	httpResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{"location database: version", "/proj", "/proj-ro", "custodian server0"} {
		if !strings.Contains(out, want) {
			t.Errorf("/locdb lacks %q:\n%s", want, out)
		}
	}

	// The same listing is folded into the shared snapshot path.
	httpResp, err = http.Get("http://" + d.debug + "/snapshot")
	if err != nil {
		t.Fatalf("GET /snapshot: %v", err)
	}
	snap, err := io.ReadAll(httpResp.Body)
	httpResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(snap), "location database: version") {
		t.Errorf("/snapshot does not include the location database:\n%.400s", snap)
	}
}

// TestItcfsdDebugProfilingAndLatency drives the real daemon and checks the
// operational surface this deployment leans on: /debug/pprof/ answers with
// the live profile index, and /metrics carries the wall-clock RPC service
// and handshake latency histograms fed by the served calls.
func TestItcfsdDebugProfilingAndLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	d := startDaemon(t, "")
	peer := d.dial(t)
	mustOK(t, call(t, peer, proto.OpVolCreate,
		proto.Marshal(proto.VolCreateArgs{Name: "proj", Path: "/proj", Owner: "operator"}), nil))

	httpResp, err := http.Get("http://" + d.debug + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET /debug/pprof/: %v", err)
	}
	body, err := io.ReadAll(httpResp.Body)
	httpResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", httpResp.StatusCode)
	}
	for _, want := range []string{"goroutine", "heap"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/debug/pprof/ index lacks %q profile", want)
		}
	}

	httpResp, err = http.Get("http://" + d.debug + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, err = io.ReadAll(httpResp.Body)
	httpResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"rpc.serve.latency"`, `"rpc.accept.latency"`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics lacks the %s histogram:\n%.600s", want, body)
		}
	}
}
