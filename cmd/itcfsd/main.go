// Command itcfsd runs a real Vice cluster server over TCP. It serves the
// same protocol — authenticated handshake, sealed records, whole-file
// transfer, callbacks — that the simulator evaluates, using the identical
// server code.
//
//	itcfsd -addr :7001 -operator-password secret
//
// Clients connect with cmd/itcfs. The first user is "operator" (a member of
// System:Administrators), who can create users and volumes from the client
// shell.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"time"

	"itcfs/internal/prot"
	"itcfs/internal/proto"
	"itcfs/internal/rpc"
	"itcfs/internal/secure"
	"itcfs/internal/sim"
	"itcfs/internal/trace"
	"itcfs/internal/vice"
	"itcfs/internal/volume"
)

func main() {
	addr := flag.String("addr", ":7001", "listen address")
	name := flag.String("name", "server0", "server name (custodian identity)")
	modeFlag := flag.String("mode", "revised", "implementation mode: prototype or revised")
	opPassword := flag.String("operator-password", "", "password for the bootstrap operator account (required)")
	traceFlag := flag.Bool("trace", false, "record a span per served call (wall-clock timestamps)")
	traceOut := flag.String("trace-out", "itcfsd-trace.json", "Chrome trace written on SIGINT (with -trace)")
	flag.Parse()
	if *opPassword == "" {
		fmt.Fprintln(os.Stderr, "itcfsd: -operator-password is required")
		os.Exit(2)
	}
	mode := vice.Revised
	if *modeFlag == "prototype" {
		mode = vice.Prototype
	}

	db := prot.NewDB()
	must := func(err error) {
		if err != nil {
			log.Fatalf("itcfsd: bootstrap: %v", err)
		}
	}
	must(db.Apply(prot.Mutation{
		Kind: prot.MutAddUser, Name: "operator",
		Key: secure.DeriveKey("operator", *opPassword),
	}))
	must(db.Apply(prot.Mutation{Kind: prot.MutAddGroup, Name: vice.AdminGroup, Owner: "operator"}))
	must(db.Apply(prot.Mutation{Kind: prot.MutAddMember, Name: vice.AdminGroup, Member: "operator"}))

	nextVol := uint32(1)
	// The real daemon serves real clients: file timestamps are wall time.
	clock := func() int64 { return time.Now().UnixNano() } //itcvet:allow wallclock -- real deployment clock, outside the simulator
	metrics := trace.NewRegistry()
	srv := vice.New(vice.Config{
		Name:          *name,
		Mode:          mode,
		DB:            db,
		Loc:           vice.NewLocDB(),
		Clock:         clock,
		ProtAuthority: true,
		AllocVolID:    func() uint32 { nextVol++; return nextVol },
		Metrics:       metrics,
	})
	rootACL := prot.NewACL()
	rootACL.Grant(prot.AnyUser, prot.RightLookup|prot.RightRead)
	rootACL.Grant(vice.AdminGroup, prot.RightsAll)
	srv.AddVolume(volume.New(1, "root", rootACL, 0, "operator", clock))
	srv.Loc().Install([]proto.LocEntry{{Prefix: "/", Volume: 1, Custodian: *name}}, nil)

	// A wall-clock tracer: real transports have no virtual time, so spans
	// carry a monotonic offset from process start. On SIGINT the accumulated
	// trace is written out and the process exits.
	var tracer *trace.Tracer
	if *traceFlag {
		start := time.Now()                                                        //itcvet:allow wallclock -- real-transport tracer epoch
		tracer = trace.New(func() sim.Time { return sim.Time(time.Since(start)) }) //itcvet:allow wallclock -- spans measure real service time
		sigs := make(chan os.Signal, 1)
		signal.Notify(sigs, os.Interrupt)
		go func() {
			<-sigs
			f, err := os.Create(*traceOut)
			if err == nil {
				err = tracer.ExportChrome(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				log.Printf("itcfsd: trace export: %v", err)
				os.Exit(1)
			}
			log.Printf("itcfsd: wrote %d spans to %s", len(tracer.Spans()), *traceOut)
			metrics.WriteText(os.Stderr)
			os.Exit(0)
		}()
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("itcfsd: listen: %v", err)
	}
	log.Printf("itcfsd: %s (%s mode) serving Vice on %s", *name, mode, l.Addr())
	for {
		conn, err := l.Accept()
		if err != nil {
			log.Fatalf("itcfsd: accept: %v", err)
		}
		go func(c net.Conn) {
			peer, err := rpc.AcceptPeer(c, db.LookupKey, srv.Dispatcher())
			if err != nil {
				log.Printf("itcfsd: %s: handshake rejected: %v", c.RemoteAddr(), err)
				c.Close()
				return
			}
			peer.SetTracer(tracer)
			log.Printf("itcfsd: %s authenticated as %q", c.RemoteAddr(), peer.User())
			<-peer.Done()
			srv.Locks().ReleaseAllFor(peer.User())
			srv.Callbacks().Drop(peer)
			log.Printf("itcfsd: %s (%q) disconnected", c.RemoteAddr(), peer.User())
		}(conn)
	}
}
