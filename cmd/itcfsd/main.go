// Command itcfsd runs a real Vice cluster server over TCP. It serves the
// same protocol — authenticated handshake, sealed records, whole-file
// transfer, callbacks — that the simulator evaluates, using the identical
// server code.
//
//	itcfsd -addr :7001 -operator-password secret -data-dir /var/lib/itcfs
//
// Clients connect with cmd/itcfs. The first user is "operator" (a member of
// System:Administrators), who can create users and volumes from the client
// shell.
//
// With -data-dir the daemon stores volumes durably through the write-ahead
// log engine (internal/store/walstore): every acknowledged operation
// survives kill -9, and startup replays the log, salvages volumes, and
// reports what it repaired to the flight recorder (vice.salvage events on
// /events). Without -data-dir all state is in memory and dies with the
// process.
//
// With -debug-addr the daemon also serves a read-only observability
// endpoint: /metrics (the registry as deterministic JSON, including
// wall-clock rpc.serve.latency and rpc.accept.latency histograms),
// /metrics.txt (the text report), /events (the flight-recorder ring),
// /locdb (the location database with per-volume custodians and replica
// sets), /snapshot (the combined dump also written to stderr on shutdown)
// and /debug/pprof/ (live CPU and heap profiling via net/http/pprof).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"itcfs/internal/prot"
	"itcfs/internal/proto"
	"itcfs/internal/rpc"
	"itcfs/internal/secure"
	"itcfs/internal/sim"
	"itcfs/internal/store"
	"itcfs/internal/store/walstore"
	"itcfs/internal/trace"
	"itcfs/internal/vice"
	"itcfs/internal/volume"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// writeLocDB renders the location database — the operator's map of where
// every volume lives and which servers carry read-only replicas of it.
// Served on /locdb and folded into /snapshot; entries come out of
// LocDB.Entries() sorted, so the listing is stable across requests.
func writeLocDB(w io.Writer, locdb *vice.LocDB) {
	entries := locdb.Entries()
	fmt.Fprintf(w, "location database: version %d, %d entries\n", locdb.Version(), len(entries))
	for _, e := range entries {
		fmt.Fprintf(w, "  %-24s volume %-6d custodian %s", e.Prefix, e.Volume, e.Custodian)
		if len(e.Replicas) > 0 {
			fmt.Fprintf(w, "  replicas %v", e.Replicas)
		}
		fmt.Fprintln(w)
	}
}

// run is main with an explicit argument list and exit code, so the
// end-to-end restart test can re-exec the daemon as a helper process.
func run(args []string) int {
	fs := flag.NewFlagSet("itcfsd", flag.ExitOnError)
	addr := fs.String("addr", ":7001", "listen address")
	name := fs.String("name", "server0", "server name (custodian identity)")
	modeFlag := fs.String("mode", "revised", "implementation mode: prototype or revised")
	opPassword := fs.String("operator-password", "", "password for the bootstrap operator account (required)")
	dataDir := fs.String("data-dir", "", "durable volume storage directory (empty = in-memory only)")
	ckptInterval := fs.Duration("checkpoint-interval", time.Minute, "how often to checkpoint and compact the log (with -data-dir; 0 = only on clean shutdown)")
	traceFlag := fs.Bool("trace", false, "record a span per served call (wall-clock timestamps)")
	traceOut := fs.String("trace-out", "itcfsd-trace.json", "Chrome trace written on shutdown (with -trace)")
	debugAddr := fs.String("debug-addr", "", "serve the read-only debug endpoint on this address (empty = off)")
	flightEvents := fs.Int("flight-events", 1024, "operational events retained in the flight recorder")
	readyFile := fs.String("ready-file", "", "write the bound serve and debug addresses here once listening (for tests)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *opPassword == "" {
		fmt.Fprintln(os.Stderr, "itcfsd: -operator-password is required")
		return 2
	}
	mode := vice.Revised
	if *modeFlag == "prototype" {
		mode = vice.Prototype
	}

	db := prot.NewDB()
	must := func(err error) {
		if err != nil {
			log.Fatalf("itcfsd: bootstrap: %v", err)
		}
	}
	must(db.Apply(prot.Mutation{
		Kind: prot.MutAddUser, Name: "operator",
		Key: secure.DeriveKey("operator", *opPassword),
	}))
	must(db.Apply(prot.Mutation{Kind: prot.MutAddGroup, Name: vice.AdminGroup, Owner: "operator"}))
	must(db.Apply(prot.Mutation{Kind: prot.MutAddMember, Name: vice.AdminGroup, Member: "operator"}))

	// The real daemon serves real clients: file timestamps are wall time,
	// and the flight recorder stamps events with a monotonic offset from
	// process start.
	start := time.Now()                                              //itcvet:allow wallclock -- real deployment epoch, outside the simulator
	clock := func() int64 { return time.Now().UnixNano() }           //itcvet:allow wallclock -- real deployment clock, outside the simulator
	uptime := func() sim.Time { return sim.Time(time.Since(start)) } //itcvet:allow wallclock -- flight/trace timestamps measure real elapsed time
	metrics := trace.NewRegistry()
	flight := trace.NewRecorder(*flightEvents, uptime)

	var st store.Store
	if *dataDir != "" {
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			log.Printf("itcfsd: data dir: %v", err)
			return 1
		}
		ws, err := walstore.Open(store.DirFS(*dataDir))
		if err != nil {
			log.Printf("itcfsd: open store: %v", err)
			return 1
		}
		st = ws
	}

	nextVol := uint32(1)
	locdb := vice.NewLocDB()
	srv := vice.New(vice.Config{
		Name:          *name,
		Mode:          mode,
		DB:            db,
		Loc:           locdb,
		Clock:         clock,
		ProtAuthority: true,
		AllocVolID:    func() uint32 { nextVol++; return nextVol },
		Metrics:       metrics,
		Flight:        flight,
		Store:         st,
	})

	if st != nil {
		rep, err := srv.RecoverStore()
		if err != nil {
			log.Printf("itcfsd: recover store: %v", err)
			return 1
		}
		for _, line := range rep.Lines() {
			log.Printf("itcfsd: %s", line)
		}
		// Resume volume-ID allocation past everything recovered: volumes
		// still held here, and every ID the location database references —
		// a volume moved to a peer before the restart is no longer local,
		// but re-issuing its ID would break AllocVolID's cell-wide
		// uniqueness and collide in the location database.
		for _, id := range srv.VolumeIDs() {
			if id > nextVol {
				nextVol = id
			}
		}
		for _, e := range locdb.Entries() {
			if e.Volume > nextVol {
				nextVol = e.Volume
			}
		}
	}
	if _, ok := srv.Volume(1); !ok {
		// First boot (or no durable state): create the root volume.
		rootACL := prot.NewACL()
		rootACL.Grant(prot.AnyUser, prot.RightLookup|prot.RightRead)
		rootACL.Grant(vice.AdminGroup, prot.RightsAll)
		if err := srv.AddVolume(volume.New(1, "root", rootACL, 0, "operator", clock)); err != nil {
			log.Printf("itcfsd: bootstrap root volume: %v", err)
			return 1
		}
		if err := srv.InstallLoc([]proto.LocEntry{{Prefix: "/", Volume: 1, Custodian: *name}}, nil); err != nil {
			log.Printf("itcfsd: bootstrap location: %v", err)
			return 1
		}
	}

	// A wall-clock tracer: real transports have no virtual time, so spans
	// carry the same monotonic offset the flight recorder uses.
	var tracer *trace.Tracer
	if *traceFlag {
		tracer = trace.New(uptime)
	}

	// snapshot is the one dump path every exit and the debug endpoint share:
	// the metrics report, the location database and the flight-recorder ring.
	snapshot := func(w io.Writer) {
		metrics.WriteText(w)
		writeLocDB(w, locdb)
		flight.WriteText(w)
	}
	// shutdown flushes state and exits: a final checkpoint (when durable),
	// the Chrome trace (when tracing), then the snapshot to stderr. Runs on
	// clean signals and on fatal serve errors alike, so both durable state
	// and operational evidence survive.
	shutdown := func(code int) {
		if st != nil {
			if err := srv.CheckpointStore(); err != nil {
				log.Printf("itcfsd: shutdown checkpoint: %v", err)
				if code == 0 {
					code = 1
				}
			}
			if err := st.Close(); err != nil {
				log.Printf("itcfsd: close store: %v", err)
			}
		}
		if tracer != nil {
			f, err := os.Create(*traceOut)
			if err == nil {
				err = tracer.ExportChrome(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				log.Printf("itcfsd: trace export: %v", err)
				if code == 0 {
					code = 1
				}
			} else {
				log.Printf("itcfsd: wrote %d spans to %s", len(tracer.Spans()), *traceOut)
			}
		}
		snapshot(os.Stderr)
		os.Exit(code)
	}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigs
		log.Printf("itcfsd: %v: shutting down", s)
		shutdown(0)
	}()

	if st != nil && *ckptInterval > 0 {
		go func() {
			for {
				time.Sleep(*ckptInterval) //itcvet:allow wallclock -- periodic checkpoint pacing in the real daemon
				if err := srv.CheckpointStore(); err != nil {
					log.Printf("itcfsd: checkpoint: %v", err)
					return
				}
			}
		}()
	}

	debugBound := ""
	if *debugAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := metrics.WriteJSON(w); err != nil {
				log.Printf("itcfsd: debug /metrics: %v", err)
			}
		})
		mux.HandleFunc("/metrics.txt", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			metrics.WriteText(w)
		})
		mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			flight.WriteText(w)
		})
		mux.HandleFunc("/locdb", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			writeLocDB(w, locdb)
		})
		mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			snapshot(w)
		})
		// Live profiling: the simulator answers "where does virtual time go",
		// pprof answers "where does this process's real CPU and heap go".
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dl, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Printf("itcfsd: debug listen: %v", err)
			return 1
		}
		debugBound = dl.Addr().String()
		log.Printf("itcfsd: debug endpoint on http://%s (/metrics /metrics.txt /events /locdb /snapshot /debug/pprof/)", debugBound)
		go func() {
			if err := http.Serve(dl, mux); err != nil {
				log.Printf("itcfsd: debug serve: %v", err)
			}
		}()
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Printf("itcfsd: listen: %v", err)
		return 1
	}
	if *readyFile != "" {
		ready := "ADDR " + l.Addr().String() + "\nDEBUG " + debugBound + "\n"
		if err := os.WriteFile(*readyFile, []byte(ready), 0o644); err != nil {
			log.Printf("itcfsd: ready file: %v", err)
			return 1
		}
	}
	log.Printf("itcfsd: %s (%s mode) serving Vice on %s", *name, mode, l.Addr())
	for {
		conn, err := l.Accept()
		if err != nil {
			log.Printf("itcfsd: accept: %v", err)
			shutdown(1)
		}
		go func(c net.Conn) {
			acceptStart := time.Now() //itcvet:allow wallclock -- real handshake cost, outside the simulator
			peer, err := rpc.AcceptPeer(c, db.LookupKey, srv.Dispatcher())
			if err != nil {
				log.Printf("itcfsd: %s: handshake rejected: %v", c.RemoteAddr(), err)
				c.Close()
				return
			}
			metrics.Histogram(trace.MetricRPCAcceptLatency).Observe(time.Since(acceptStart)) //itcvet:allow wallclock -- real handshake cost, outside the simulator
			peer.SetTracer(tracer)
			peer.SetMetrics(metrics)
			log.Printf("itcfsd: %s authenticated as %q", c.RemoteAddr(), peer.User())
			<-peer.Done()
			srv.Locks().ReleaseAllFor(peer.User())
			srv.Callbacks().Drop(peer)
			log.Printf("itcfsd: %s (%q) disconnected", c.RemoteAddr(), peer.User())
		}(conn)
	}
}
