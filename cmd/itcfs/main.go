// Command itcfs is an interactive client for a Vice server (cmd/itcfsd): a
// complete Virtue workstation — local file system, Venus whole-file cache,
// shared name space under /vice — driven from a small shell.
//
//	itcfs -addr localhost:7001 -user operator -password secret
//
// Type "help" at the prompt for commands.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"strings"

	"itcfs/internal/prot"
	"itcfs/internal/proto"
	"itcfs/internal/rpc"
	"itcfs/internal/secure"
	"itcfs/internal/sim"
	"itcfs/internal/unixfs"
	"itcfs/internal/venus"
	"itcfs/internal/vice"
	"itcfs/internal/virtue"
	"itcfs/internal/wire"
)

func main() {
	addr := flag.String("addr", "localhost:7001", "server address")
	user := flag.String("user", "", "user name (required)")
	password := flag.String("password", "", "password (required)")
	serverName := flag.String("server", "server0", "server name (must match itcfsd -name)")
	modeFlag := flag.String("mode", "revised", "client mode: prototype or revised")
	flag.Parse()
	if *user == "" || *password == "" {
		fmt.Fprintln(os.Stderr, "itcfs: -user and -password are required")
		os.Exit(2)
	}
	mode := vice.Revised
	if *modeFlag == "prototype" {
		mode = vice.Prototype
	}

	// The callback service: the server breaks our cached copies through it.
	cbServer := rpc.NewServer()
	var v *venus.Venus

	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "itcfs: %v\n", err)
		os.Exit(1)
	}
	peer, err := rpc.DialPeer(conn, *user, secure.DeriveKey(*user, *password), cbServer)
	if err != nil {
		fmt.Fprintf(os.Stderr, "itcfs: authentication failed: %v\n", err)
		os.Exit(1)
	}
	defer peer.Close()

	local := unixfs.New(nil)
	v = venus.New(venus.Config{
		Mode:       mode,
		Machine:    "itcfs-cli",
		Local:      local,
		HomeServer: *serverName,
		Connect: func(_ *sim.Proc, server string) (venus.Conn, error) {
			if server != *serverName {
				return nil, fmt.Errorf("unknown server %q (single-server client)", server)
			}
			return peer, nil
		},
	})
	cbServer.Handle(rpc.Op(proto.OpCallbackBreak), v.HandleCallbackBreak)
	v.Login(*user)
	fs := virtue.New(local, v)
	local.MkdirAll("/tmp", 0o777, *user)

	fmt.Printf("connected to %s as %s (%s mode); shared space under /vice\n", *addr, *user, mode)
	sh := &shell{fs: fs, v: v, peer: peer, user: *user}
	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("itcfs> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line != "" {
			if line == "quit" || line == "exit" {
				break
			}
			if err := sh.exec(line); err != nil {
				fmt.Printf("error: %v\n", err)
			}
		}
		fmt.Print("itcfs> ")
	}
}

type shell struct {
	fs   *virtue.FS
	v    *venus.Venus
	peer *rpc.Peer
	user string
}

func (sh *shell) exec(line string) error {
	args := strings.Fields(line)
	cmd, rest := args[0], args[1:]
	need := func(n int) error {
		if len(rest) < n {
			return fmt.Errorf("%s: missing arguments (try help)", cmd)
		}
		return nil
	}
	switch cmd {
	case "help":
		fmt.Print(`commands:
  ls PATH                 list a directory
  cat PATH                print a file
  write PATH TEXT...      write text to a file
  get VICEPATH HOSTFILE   copy from the file system to the host OS
  put HOSTFILE VICEPATH   copy a host OS file in
  stat PATH               file status
  mkdir / rm / rmdir / mv paths
  ln -s TARGET PATH       symbolic link
  chmod MODE PATH         octal protection bits
  lock PATH [-x] / unlock PATH
  acl PATH                show a directory's access list
  grant PATH NAME RIGHTS  rights like rliwdka, "all", "none"
  deny PATH NAME RIGHTS   negative rights (rapid revocation)
  stats                   Venus cache statistics
  adduser NAME PASSWORD   (operator) create a user + home volume
  volstat ID              volume status
  salvage [ID]            (operator) crash-recover volumes (0 or none = all)
  quit
`)
		return nil
	case "ls":
		path := "/vice"
		if len(rest) > 0 {
			path = rest[0]
		}
		entries, err := sh.fs.ReadDir(nil, path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			suffix := ""
			if e.IsDir {
				suffix = "/"
			}
			fmt.Println(e.Name + suffix)
		}
		return nil
	case "cat":
		if err := need(1); err != nil {
			return err
		}
		data, err := sh.fs.ReadFile(nil, rest[0])
		if err != nil {
			return err
		}
		os.Stdout.Write(data)
		if len(data) > 0 && data[len(data)-1] != '\n' {
			fmt.Println()
		}
		return nil
	case "write":
		if err := need(2); err != nil {
			return err
		}
		return sh.fs.WriteFile(nil, rest[0], []byte(strings.Join(rest[1:], " ")+"\n"))
	case "get":
		if err := need(2); err != nil {
			return err
		}
		data, err := sh.fs.ReadFile(nil, rest[0])
		if err != nil {
			return err
		}
		return os.WriteFile(rest[1], data, 0o644)
	case "put":
		if err := need(2); err != nil {
			return err
		}
		data, err := os.ReadFile(rest[0])
		if err != nil {
			return err
		}
		return sh.fs.WriteFile(nil, rest[1], data)
	case "stat":
		if err := need(1); err != nil {
			return err
		}
		st, err := sh.fs.Stat(nil, rest[0])
		if err != nil {
			return err
		}
		space := "local"
		if st.Shared {
			space = "vice"
		}
		fmt.Printf("%s: %d bytes, mode %04o, owner %s, version %d (%s)\n",
			st.Name, st.Size, st.Mode, st.Owner, st.Version, space)
		return nil
	case "mkdir":
		if err := need(1); err != nil {
			return err
		}
		return sh.fs.Mkdir(nil, rest[0], 0o755)
	case "rm":
		if err := need(1); err != nil {
			return err
		}
		return sh.fs.Remove(nil, rest[0])
	case "rmdir":
		if err := need(1); err != nil {
			return err
		}
		return sh.fs.RemoveDir(nil, rest[0])
	case "mv":
		if err := need(2); err != nil {
			return err
		}
		return sh.fs.Rename(nil, rest[0], rest[1])
	case "ln":
		if len(rest) == 3 && rest[0] == "-s" {
			return sh.fs.Symlink(nil, rest[1], rest[2])
		}
		return fmt.Errorf("usage: ln -s TARGET PATH")
	case "chmod":
		if err := need(2); err != nil {
			return err
		}
		var mode uint16
		if _, err := fmt.Sscanf(rest[0], "%o", &mode); err != nil {
			return fmt.Errorf("bad mode %q", rest[0])
		}
		return sh.fs.Chmod(nil, rest[1], mode)
	case "lock":
		if err := need(1); err != nil {
			return err
		}
		exclusive := len(rest) > 1 && rest[1] == "-x"
		return sh.v.Lock(nil, strings.TrimPrefix(rest[0], "/vice"), exclusive)
	case "unlock":
		if err := need(1); err != nil {
			return err
		}
		return sh.v.Unlock(nil, strings.TrimPrefix(rest[0], "/vice"))
	case "acl":
		if err := need(1); err != nil {
			return err
		}
		raw, err := sh.v.GetACL(nil, strings.TrimPrefix(rest[0], "/vice"))
		if err != nil {
			return err
		}
		acl, err := proto.ACLDecode(raw)
		if err != nil {
			return err
		}
		printSide := func(label string, m map[string]prot.Right) {
			names := make([]string, 0, len(m))
			for n := range m {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				fmt.Printf("  %s %-24s %s\n", label, n, m[n])
			}
		}
		printSide("+", acl.Positive)
		printSide("-", acl.Negative)
		return nil
	case "grant", "deny":
		if err := need(3); err != nil {
			return err
		}
		dir := strings.TrimPrefix(rest[0], "/vice")
		rights, err := prot.ParseRights(rest[2])
		if err != nil {
			return err
		}
		raw, err := sh.v.GetACL(nil, dir)
		if err != nil {
			return err
		}
		acl, err := proto.ACLDecode(raw)
		if err != nil {
			return err
		}
		if cmd == "grant" {
			acl.Grant(rest[1], rights)
		} else {
			acl.Deny(rest[1], rights)
		}
		return sh.v.SetACL(nil, dir, proto.ACLEncode(acl))
	case "stats":
		st := sh.v.Stats()
		fmt.Printf("opens %d  hits %d (%.1f%%)  fetches %d  stores %d  validations %d  breaks %d\n",
			st.Opens, st.Hits, 100*st.HitRatio(), st.Fetches, st.Stores, st.Validations, st.CallbackBreaks)
		files, bytes := sh.v.CacheUsage()
		fmt.Printf("cache: %d entries, %d bytes\n", files, bytes)
		return nil
	case "adduser":
		if err := need(2); err != nil {
			return err
		}
		name, pw := rest[0], rest[1]
		if err := sh.protect(prot.Mutation{
			Kind: prot.MutAddUser, Name: name, Key: secure.DeriveKey(name, pw),
		}); err != nil {
			return err
		}
		if err := sh.fs.Mkdir(nil, "/vice/usr", 0o755); err != nil && !strings.Contains(err.Error(), "exists") {
			return err
		}
		resp, err := sh.peer.Call(nil, rpc.Request{
			Op: rpc.Op(proto.OpVolCreate),
			Body: proto.Marshal(proto.VolCreateArgs{
				Name: "user." + name, Path: "/usr/" + name, Owner: name,
			}),
		})
		if err != nil {
			return err
		}
		if !resp.OK() {
			return proto.CodeToErr(resp.Code, string(resp.Body))
		}
		fmt.Printf("created user %s with home /vice/usr/%s\n", name, name)
		return nil
	case "salvage":
		var id uint32
		if len(rest) > 0 {
			if _, err := fmt.Sscanf(rest[0], "%d", &id); err != nil {
				return fmt.Errorf("bad volume id %q", rest[0])
			}
		}
		resp, err := sh.peer.Call(nil, rpc.Request{
			Op:   rpc.Op(proto.OpVolSalvage),
			Body: proto.Marshal(proto.VolStatusArgs{Volume: id}),
		})
		if err != nil {
			return err
		}
		if !resp.OK() {
			return proto.CodeToErr(resp.Code, string(resp.Body))
		}
		d := wire.NewDecoder(resp.Body)
		orphans, dangling, links := d.Int(), d.Int(), d.Int()
		if err := d.Close(); err != nil {
			return err
		}
		fmt.Printf("salvage: %d orphans removed, %d dangling entries dropped, %d link counts fixed\n",
			orphans, dangling, links)
		return nil
	case "volstat":
		if err := need(1); err != nil {
			return err
		}
		var id uint32
		if _, err := fmt.Sscanf(rest[0], "%d", &id); err != nil {
			return fmt.Errorf("bad volume id %q", rest[0])
		}
		resp, err := sh.peer.Call(nil, rpc.Request{
			Op:   rpc.Op(proto.OpVolStatus),
			Body: proto.Marshal(proto.VolStatusArgs{Volume: id}),
		})
		if err != nil {
			return err
		}
		if !resp.OK() {
			return proto.CodeToErr(resp.Code, string(resp.Body))
		}
		vs, err := proto.Unmarshal(resp.Body, proto.DecodeVolStatusReply)
		if err != nil {
			return err
		}
		fmt.Printf("volume %d %q on %s: %d/%d bytes, online=%v readonly=%v\n",
			vs.Volume, vs.Name, vs.Server, vs.Used, vs.Quota, vs.Online, vs.ReadOnly)
		return nil
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
}

func (sh *shell) protect(m prot.Mutation) error {
	resp, err := sh.peer.Call(nil, rpc.Request{Op: rpc.Op(proto.OpProtMutate), Body: proto.Marshal(m)})
	if err != nil {
		return err
	}
	if !resp.OK() {
		return proto.CodeToErr(resp.Code, string(resp.Body))
	}
	return nil
}
