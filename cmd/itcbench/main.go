// Command itcbench regenerates the paper's evaluation (§5.2): every
// quantitative claim has an experiment (E1–E13) that runs the corresponding
// workload on the simulated cell and prints a paper-vs-measured table.
//
// Usage:
//
//	itcbench            # run the standard suite (a few minutes of CPU)
//	itcbench -quick     # scaled-down versions of everything
//	itcbench -full      # the paper-sized deployment (120 WS, 8-hour day)
//	itcbench -run E4    # one experiment (comma-separated list accepted)
//	itcbench -run E13 -trace -trace-out trace.json
//	                    # also dump the traced benchmark as Chrome
//	                    # trace-event JSON (load in Perfetto)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"itcfs"
	"itcfs/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "scaled-down experiments (fast)")
	full := flag.Bool("full", false, "paper-sized deployment (slow)")
	run := flag.String("run", "", "comma-separated experiment IDs (default all)")
	traceFlag := flag.Bool("trace", false, "export a Chrome trace of the instrumented benchmark")
	traceOut := flag.String("trace-out", "trace.json", "trace output path (with -trace)")
	timeline := flag.Bool("timeline", false, "print the E15 telemetry dashboard and flight recorder")
	timelineOut := flag.String("timeline-out", "", "write the E15 dashboard and flight recorder to this file")
	seriesOut := flag.String("series-out", "", "export the E15 time series (.json = JSON, otherwise CSV)")
	clients := flag.String("clients", "", "comma-separated client counts for the kernel scale bench (implies -run SCALE; with -run E14 it replaces the protocol sweep)")
	scaleOut := flag.String("scale-out", "", "write the scale bench result as BENCH_scale.json-format JSON to this path")
	scaleReps := flag.Int("scale-reps", 1, "scale/obs bench measurement repetitions per client count (best-of)")
	obsOut := flag.String("obs-out", "", "write the E17 observability bench result as BENCH_obs.json-format JSON to this path")
	flag.Parse()

	want := map[string]bool{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	if *clients != "" && !want["E17"] {
		// -clients selects the scale bench: standalone, or in place of E14's
		// protocol sweep when the caller asked for E14 (the CI smoke runs
		// `-run E14 -clients 10000 -quick`). With -run E17 the counts feed
		// the observability ablation instead.
		delete(want, "E14")
		want["SCALE"] = true
	}
	selected := func(id string) bool {
		if len(want) == 0 {
			// The default sweep regenerates the paper's evaluation; the SCALE
			// and E17 benches measure the simulator itself (minutes at 30k
			// clients) and run only on explicit request (-run SCALE/-clients,
			// -run E17).
			return id != "SCALE" && id != "E17"
		}
		return want[strings.ToUpper(id)]
	}

	type exp struct {
		id string
		fn func() (*harness.Report, error)
	}
	var e15 *harness.E15Result
	var scaleRes *harness.ScaleBench
	var obsRes *harness.ObsBench
	scale := 1.0
	if *quick {
		scale = 0.25
	}
	if *full {
		scale = 4.0
	}
	dur := func(d time.Duration) time.Duration { return time.Duration(float64(d) * scale) }
	users := func(n int) int {
		u := int(float64(n) * scale)
		if u < 4 {
			u = 4
		}
		return u
	}

	experiments := []exp{
		{"E1", func() (*harness.Report, error) {
			cfg := harness.DefaultE1()
			cfg.Load.UsersPer = users(20)
			cfg.Warm = dur(30 * time.Minute)
			cfg.Measure = dur(2 * time.Hour)
			return harness.E1CallMix(cfg)
		}},
		{"E2", func() (*harness.Report, error) {
			cfg := harness.DefaultE2()
			if *quick {
				cfg.Load.Clusters = 2
				cfg.Load.UsersPer = 8
			}
			if *full {
				cfg.Measure = 8 * time.Hour
			}
			return harness.E2Utilization(cfg)
		}},
		{"E3", func() (*harness.Report, error) {
			cfg := harness.DefaultE3()
			cfg.Load.UsersPer = users(20)
			cfg.Warm = dur(30 * time.Minute)
			cfg.Measure = dur(time.Hour)
			return harness.E3HitRatio(cfg)
		}},
		{"E4", func() (*harness.Report, error) {
			return harness.E4AndrewBenchmark(harness.DefaultE4())
		}},
		{"E4r", func() (*harness.Report, error) {
			cfg := harness.DefaultE4()
			cfg.Mode = itcfs.Revised
			r, err := harness.E4AndrewBenchmark(cfg)
			if err == nil {
				r.ID = "E4r"
				r.Title += " (revised implementation)"
			}
			return r, err
		}},
		{"E5", func() (*harness.Report, error) {
			cfg := harness.DefaultE5()
			if *quick {
				cfg.LoadWS = []int{0, 10, 20}
			}
			if *full {
				cfg.LoadWS = []int{0, 5, 10, 20, 30, 40, 50}
			}
			return harness.E5Scalability(cfg)
		}},
		{"E6", func() (*harness.Report, error) {
			cfg := harness.DefaultE6()
			cfg.UsersPer = users(20)
			cfg.Warm = dur(30 * time.Minute)
			cfg.Measure = dur(time.Hour)
			return harness.E6ValidationAblation(cfg)
		}},
		{"E7", func() (*harness.Report, error) {
			return harness.E7PathnameAblation(harness.DefaultE7())
		}},
		{"E8", func() (*harness.Report, error) {
			return harness.E8WholeFileVsPaged(harness.DefaultE8())
		}},
		{"E9", func() (*harness.Report, error) {
			cfg := harness.DefaultE9()
			cfg.Readers = users(10)
			return harness.E9ReadOnlyReplication(cfg)
		}},
		{"E10", func() (*harness.Report, error) {
			return harness.E10Revocation(harness.DefaultE10())
		}},
		{"E11", func() (*harness.Report, error) {
			return harness.E11Rebalance(harness.DefaultE11())
		}},
		{"E13", func() (*harness.Report, error) {
			return harness.E13LatencyBreakdown(harness.DefaultE13())
		}},
		{"E14", func() (*harness.Report, error) {
			cfg := harness.DefaultE14()
			if *quick {
				cfg.Clients = []int{25, 50}
			}
			return harness.E14Scalability(cfg)
		}},
		{"E15", func() (*harness.Report, error) {
			cfg := harness.DefaultE15()
			if *quick {
				cfg.Cadence = 15 * time.Second
				cfg.Phase = dur(10 * time.Minute)
				cfg.MoveGrace = 30 * time.Second
			}
			res, err := harness.E15HotVolume(cfg)
			if err != nil {
				return nil, err
			}
			e15 = res
			return res.Report, nil
		}},
		{"E16", func() (*harness.Report, error) {
			cfg := harness.DefaultE16()
			if *quick {
				cfg.Window = 3 * time.Minute
				cfg.SysFiles = 12
			}
			res, err := harness.E16Replication(cfg)
			if err != nil {
				return nil, err
			}
			return res.Report, nil
		}},
		{"E17", func() (*harness.Report, error) {
			cfg := harness.DefaultE17()
			if *clients != "" {
				cfg.Clients = nil
				for _, s := range strings.Split(*clients, ",") {
					n, err := strconv.Atoi(strings.TrimSpace(s))
					if err != nil || n <= 0 {
						return nil, fmt.Errorf("bad -clients entry %q", s)
					}
					cfg.Clients = append(cfg.Clients, n)
				}
			}
			cfg.Reps = *scaleReps
			ob, err := harness.RunObsBench(cfg)
			if err != nil {
				return nil, err
			}
			obsRes = ob
			return ob.Report(), nil
		}},
		{"SCALE", func() (*harness.Report, error) {
			cfg := harness.DefaultScaleBench()
			if *clients != "" {
				cfg.Clients = nil
				for _, s := range strings.Split(*clients, ",") {
					n, err := strconv.Atoi(strings.TrimSpace(s))
					if err != nil || n <= 0 {
						return nil, fmt.Errorf("bad -clients entry %q", s)
					}
					cfg.Clients = append(cfg.Clients, n)
				}
			}
			cfg.Quick = *quick
			cfg.Reps = *scaleReps
			sb, err := harness.RunScaleBench(cfg)
			if err != nil {
				return nil, err
			}
			scaleRes = sb
			return sb.Report(), nil
		}},
	}

	fmt.Println("itcbench — reproduction of 'The ITC Distributed File System' (SOSP 1985), §5.2")
	failed := 0
	for _, e := range experiments {
		if !selected(e.id) {
			continue
		}
		start := time.Now() //itcvet:allow wallclock -- reports how long the experiment took to simulate
		r, err := e.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			failed++
			continue
		}
		r.Print(os.Stdout)
		fmt.Printf("  (%.1fs wall clock)\n", time.Since(start).Seconds()) //itcvet:allow wallclock -- operator-facing elapsed time, not in any result
	}
	if *traceFlag {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		err = harness.ExportTracedAndrew(itcfs.Revised, harness.DefaultE13(), f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote Chrome trace of the revised-mode Andrew run to %s\n", *traceOut)
	}
	if *scaleOut != "" {
		if scaleRes == nil {
			fmt.Fprintln(os.Stderr, "scale-out: no scale bench result (run with -run SCALE or -clients, and check it succeeded)")
			os.Exit(1)
		}
		f, err := os.Create(*scaleOut)
		if err == nil {
			err = scaleRes.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "scale-out: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote kernel scale bench to %s\n", *scaleOut)
	}
	if *obsOut != "" {
		if obsRes == nil {
			fmt.Fprintln(os.Stderr, "obs-out: no observability bench result (run with -run E17, and check it succeeded)")
			os.Exit(1)
		}
		f, err := os.Create(*obsOut)
		if err == nil {
			err = obsRes.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "obs-out: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote observability bench to %s\n", *obsOut)
	}
	if *timeline || *timelineOut != "" || *seriesOut != "" {
		if e15 == nil {
			fmt.Fprintln(os.Stderr, "timeline: no E15 result (run with -run E15, and check it succeeded)")
			os.Exit(1)
		}
		if *timeline {
			fmt.Print("\n" + e15.Timeline + "\n" + e15.Flight)
		}
		if *timelineOut != "" {
			if err := os.WriteFile(*timelineOut, []byte(e15.Timeline+"\n"+e15.Flight), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "timeline: %v\n", err)
				os.Exit(1)
			}
		}
		if *seriesOut != "" {
			f, err := os.Create(*seriesOut)
			if err == nil {
				if strings.HasSuffix(*seriesOut, ".json") {
					err = e15.Cell.Sampler.WriteJSON(f)
				} else {
					err = e15.Cell.Sampler.WriteCSV(f)
				}
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "series: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
