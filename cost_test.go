package itcfs

import (
	"testing"
	"testing/quick"

	"itcfs/internal/proto"
	"itcfs/internal/rpc"
)

func TestPathComponents(t *testing.T) {
	mk := func(path string) rpc.Request {
		return rpc.Request{
			Op:   rpc.Op(proto.OpFetch),
			Body: proto.Marshal(proto.FetchArgs{Ref: proto.Ref{Path: path}}),
		}
	}
	cases := []struct {
		path string
		want int
	}{
		{"/", 1},
		{"/usr", 1},
		{"/usr/satya", 2},
		{"/usr/satya/src/main.c", 4},
	}
	for _, c := range cases {
		if got := pathComponents(mk(c.path)); got != c.want {
			t.Errorf("pathComponents(%q) = %d, want %d", c.path, got, c.want)
		}
	}
	// FID-mode requests carry an empty path: no walk charge.
	fidReq := rpc.Request{
		Op:   rpc.Op(proto.OpFetch),
		Body: proto.Marshal(proto.FetchArgs{Ref: proto.Ref{FID: proto.FID{Volume: 1, Vnode: 2, Uniq: 3}}}),
	}
	if got := pathComponents(fidReq); got != 0 {
		t.Errorf("FID request walked %d components", got)
	}
	// Bodies that are not path-shaped charge nothing and never panic.
	for _, body := range [][]byte{nil, {1}, {255, 255, 255, 255}, []byte("garbage!")} {
		if got := pathComponents(rpc.Request{Body: body}); got != 0 {
			t.Errorf("garbage body %v walked %d", body, got)
		}
	}
}

func TestCostModelModes(t *testing.T) {
	costs := DefaultCosts()
	ctx := rpc.Ctx{User: "u"}
	fetch := rpc.Request{
		Op:   rpc.Op(proto.OpFetch),
		Body: proto.Marshal(proto.FetchArgs{Ref: proto.Ref{Path: "/usr/satya/file"}}),
	}
	resp := rpc.Response{Bulk: make([]byte, 8192)}

	protoCost := costs.Model(Prototype)(ctx, fetch, resp)
	revCost := costs.Model(Revised)(ctx, fetch, resp)
	// The prototype pays the process switch and the per-component walk on
	// top of everything the revised server pays.
	wantDelta := costs.ProcessSwitch + 3*costs.WalkComponent
	if protoCost.CPU-revCost.CPU != wantDelta {
		t.Errorf("prototype surcharge = %v, want %v", protoCost.CPU-revCost.CPU, wantDelta)
	}
	if protoCost.Disk != revCost.Disk {
		t.Errorf("disk differs across modes: %v vs %v", protoCost.Disk, revCost.Disk)
	}
	// Data size scales both CPU and disk.
	small := costs.Model(Revised)(ctx, fetch, rpc.Response{Bulk: make([]byte, 1024)})
	if small.CPU >= revCost.CPU || small.Disk >= revCost.Disk {
		t.Error("larger responses must cost more")
	}
}

func TestCostModelValidationIsCheapFetchIsNot(t *testing.T) {
	// The entire E6 argument rests on this ordering.
	costs := DefaultCosts()
	model := costs.Model(Prototype)
	ctx := rpc.Ctx{}
	valid := model(ctx, rpc.Request{
		Op:   rpc.Op(proto.OpTestValid),
		Body: proto.Marshal(proto.TestValidArgs{Ref: proto.Ref{Path: "/u/f"}}),
	}, rpc.Response{})
	fetch := model(ctx, rpc.Request{
		Op:   rpc.Op(proto.OpFetch),
		Body: proto.Marshal(proto.FetchArgs{Ref: proto.Ref{Path: "/u/f"}}),
	}, rpc.Response{Bulk: make([]byte, 4096)})
	if valid.CPU*5 > fetch.CPU {
		t.Errorf("validation (%v) not much cheaper than fetch (%v)", valid.CPU, fetch.CPU)
	}
}

// Property: the cost model never returns negative charges, for any op and
// any payload size.
func TestQuickCostsNonNegative(t *testing.T) {
	costs := DefaultCosts()
	models := []rpc.CostModel{costs.Model(Prototype), costs.Model(Revised)}
	f := func(op uint16, body []byte, bulkLen uint16) bool {
		req := rpc.Request{Op: rpc.Op(op), Body: body, Bulk: make([]byte, bulkLen)}
		resp := rpc.Response{Bulk: make([]byte, bulkLen/2)}
		for _, m := range models {
			c := m(rpc.Ctx{}, req, resp)
			if c.CPU < 0 || c.Disk < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
